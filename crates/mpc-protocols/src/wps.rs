//! `Π_WPS` — the best-of-both-worlds weak polynomial sharing protocol
//! (Fig 3, Theorem 4.8).
//!
//! A dealer `D` holds `L` polynomials of degree `t_s`. It embeds each into a
//! random symmetric bivariate polynomial and hands every party its row
//! polynomials; parties exchange the supposedly common points, publish
//! `OK`/`NOK` votes and build a consistency graph. The dealer then either
//! gets a `(W, E, F)` structure accepted within the synchronous schedule
//! (checked by a `Π_BA` vote), or the parties fall back to waiting for an
//! `(n, t_a)`-star, which the dealer finds and A-casts once enough votes have
//! accumulated. Either way every party that produces an output holds points
//! on the same `t_s`-degree polynomials (weak commitment: for a corrupt
//! dealer in a synchronous network, only at least `t_s + 1` honest parties
//! are guaranteed to succeed — fixing that is exactly what `Π_VSS` adds).

use std::any::Any;
use std::collections::BTreeMap;

use mpc_algebra::evaluation_points::alpha;
use mpc_algebra::{rs, Fp, Polynomial, SymmetricBivariate};
use mpc_net::{Context, PartyId, PathSlice, Protocol, Time};

use crate::ba::Ba;
use crate::bc::Bc;
use crate::msg::{BcValue, Msg, Vote};
use crate::params::Params;
use crate::star::ConsistencyGraph;
use crate::voteboard::VoteBoard;

const SEG_WEF_BC: u32 = 0;
const SEG_BA: u32 = 1;
const SEG_STAR: u32 = 2;
const SEG_VOTES: u32 = 3;

const TIMER_SEND_POINTS: u64 = 10;
const TIMER_VOTES: u64 = 11;
const TIMER_WEF: u64 = 12;
const TIMER_BA: u64 = 13;

/// Dealer-side computation of the `(W, E, F)` structure from the regular-mode
/// consistency graph (Phase IV of `Π_WPS`/`Π_VSS`). `nok_is_wrong(i, ell, v)`
/// must return `true` if party `i`'s published NOK value `v` for polynomial
/// `ell` differs from the dealer's own bivariate polynomial (in which case the
/// dealer discards `P_i`).
pub fn dealer_compute_wef(
    params: &Params,
    graph: &ConsistencyGraph,
    noks: impl Fn(PartyId) -> Vec<(PartyId, u32, Fp)>,
    nok_is_wrong: impl Fn(PartyId, PartyId, u32, Fp) -> bool,
) -> Option<(Vec<PartyId>, Vec<PartyId>, Vec<PartyId>)> {
    let n = params.n;
    let ts = params.ts;
    let mut g = graph.clone();
    for i in 0..n {
        for (j, ell, v) in noks(i) {
            if nok_is_wrong(i, j, ell, v) {
                g.remove_vertex_edges(i);
            }
        }
    }
    // W = parties consistent with at least n - t_s parties (counting
    // themselves, as is standard for consistency graphs), then iteratively
    // prune parties not consistent with at least n - t_s parties of W.
    let mut w: Vec<PartyId> = (0..n).filter(|&i| g.degree(i) + 1 >= n - ts).collect();
    loop {
        let before = w.len();
        w = w
            .iter()
            .copied()
            .filter(|&i| g.degree_within(i, &w) + 1 >= n - ts)
            .collect();
        if w.len() == before {
            break;
        }
        if w.is_empty() {
            return None;
        }
    }
    if w.len() < n - ts {
        return None;
    }
    let (e, f) = g.find_star(ts, Some(&w))?;
    Some((w, e, f))
}

/// The receiver-side acceptance check for a `(W, E, F)` broadcast by the
/// dealer, based on votes received through regular mode (Local Computation
/// "Verifying and Accepting (W, E, F)").
pub fn accept_wef(
    params: &Params,
    votes: &VoteBoard,
    w: &[PartyId],
    e: &[PartyId],
    f: &[PartyId],
) -> bool {
    let n = params.n;
    let ts = params.ts;
    if w.len() < n - ts || w.iter().any(|&i| i >= n) {
        return false;
    }
    if votes.has_conflicting_noks(w) {
        return false;
    }
    let g = votes.graph_regular();
    if w.iter().any(|&j| g.degree(j) + 1 < n - ts) {
        return false;
    }
    if w.iter().any(|&j| g.degree_within(j, w) + 1 < n - ts) {
        return false;
    }
    g.is_star(ts, e, f, Some(w))
}

/// Decodes a `(W, E, F)` broadcast value.
pub fn decode_wef(value: &BcValue) -> Option<(Vec<PartyId>, Vec<PartyId>, Vec<PartyId>)> {
    match value {
        BcValue::Wef { w, e, f } => Some((
            w.iter().map(|&x| x as PartyId).collect(),
            e.iter().map(|&x| x as PartyId).collect(),
            f.iter().map(|&x| x as PartyId).collect(),
        )),
        _ => None,
    }
}

/// Decodes an `(E′, F′)` star broadcast value.
pub fn decode_star(value: &BcValue) -> Option<(Vec<PartyId>, Vec<PartyId>)> {
    match value {
        BcValue::Star { e, f } => Some((
            e.iter().map(|&x| x as PartyId).collect(),
            f.iter().map(|&x| x as PartyId).collect(),
        )),
        _ => None,
    }
}

/// One instance of `Π_WPS` for `L` polynomials.
#[derive(Debug)]
pub struct Wps {
    dealer: PartyId,
    params: Params,
    l_count: usize,
    /// Dealer only: the embedded symmetric bivariate polynomials.
    bivariates: Vec<SymmetricBivariate>,
    /// Dealer only: whether the row polynomials have been distributed.
    distributed: bool,
    /// This party's row polynomials received from the dealer.
    my_rows: Option<Vec<Polynomial>>,
    /// Points received from counterpart `j` (their evaluation of their row at
    /// my `α`), i.e. points on my row polynomials.
    points_from: BTreeMap<PartyId, Vec<Fp>>,
    points_sent: bool,
    votes: VoteBoard,
    wef_bc: Option<Bc>,
    ba: Option<Ba>,
    star_acast: Option<crate::acast::Acast>,
    pending: Vec<(u32, PartyId, Msg)>,
    accepted_wef: Option<(Vec<PartyId>, Vec<PartyId>, Vec<PartyId>)>,
    ba_output: Option<bool>,
    star_published: bool,
    start: Time,
    /// The WPS-shares (one per polynomial) once computed.
    pub shares: Option<Vec<Fp>>,
    /// Local time at which the shares were output.
    pub output_at: Option<Time>,
}

impl Wps {
    /// Creates a participant instance.
    pub fn new(dealer: PartyId, params: Params, l_count: usize) -> Self {
        Wps {
            dealer,
            params,
            l_count,
            bivariates: Vec::new(),
            distributed: false,
            my_rows: None,
            points_from: BTreeMap::new(),
            points_sent: false,
            votes: VoteBoard::new(SEG_VOTES, params.ts, params),
            wef_bc: None,
            ba: None,
            star_acast: None,
            pending: Vec::new(),
            accepted_wef: None,
            ba_output: None,
            star_published: false,
            start: 0,
            shares: None,
            output_at: None,
        }
    }

    /// Creates the dealer-side instance with its `L` input polynomials
    /// (degree ≤ `t_s` each); the bivariate embeddings are sampled from the
    /// party RNG at `init`.
    pub fn new_dealer(dealer: PartyId, params: Params, polynomials: Vec<Polynomial>) -> Self {
        let mut wps = Self::new(dealer, params, polynomials.len());
        // store the inputs temporarily as "rows"; real embedding happens at init
        wps.my_rows = Some(polynomials);
        wps
    }

    /// The dealer of this instance.
    pub fn dealer(&self) -> PartyId {
        self.dealer
    }

    /// Supplies the dealer's polynomials after creation (used by `Π_VSS`,
    /// where a party becomes a WPS dealer only once it has received its row
    /// polynomials from the VSS dealer).
    pub fn provide_dealer_input(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        polynomials: Vec<Polynomial>,
    ) {
        if ctx.me == self.dealer && !self.distributed {
            self.l_count = polynomials.len();
            self.distribute(ctx, polynomials);
        }
    }

    fn distribute(&mut self, ctx: &mut Context<'_, Msg>, polynomials: Vec<Polynomial>) {
        self.distributed = true;
        let ts = self.params.ts;
        self.bivariates = polynomials
            .iter()
            .map(|q| SymmetricBivariate::embedding(ctx.rng(), ts, q))
            .collect();
        for i in 0..self.params.n {
            let rows: Vec<Vec<Fp>> = self
                .bivariates
                .iter()
                .map(|b| b.row(alpha(i)).coeffs().to_vec())
                .collect();
            ctx.send(i, Msg::RowPolys(rows));
        }
    }

    fn schedule_point_sending(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.points_sent {
            return;
        }
        let rem = ctx.now % ctx.delta;
        let delay = if rem == 0 { 0 } else { ctx.delta - rem };
        ctx.set_timer(delay, TIMER_SEND_POINTS);
    }

    fn send_points(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.points_sent {
            return;
        }
        let Some(rows) = &self.my_rows else { return };
        self.points_sent = true;
        for j in 0..self.params.n {
            let pts: Vec<Fp> = rows.iter().map(|r| r.evaluate(alpha(j))).collect();
            ctx.send(j, Msg::Points(pts));
        }
    }

    fn compute_vote(&self, j: PartyId) -> Option<Vote> {
        let rows = self.my_rows.as_ref()?;
        let pts = self.points_from.get(&j)?;
        if pts.len() != rows.len() {
            return Some(Vote::Nok {
                ell: 0,
                value: rows[0].evaluate(alpha(j)),
            });
        }
        for (ell, (row, &p)) in rows.iter().zip(pts).enumerate() {
            let mine = row.evaluate(alpha(j));
            if mine != p {
                return Some(Vote::Nok {
                    ell: ell as u32,
                    value: mine,
                });
            }
        }
        Some(Vote::Ok)
    }

    fn refresh_votes(&mut self, ctx: &mut Context<'_, Msg>) {
        // Hot path: re-run after every event. Only counterparts not yet
        // voted on are considered ([`VoteBoard::add_vote`] ignores repeats
        // anyway, but recomputing a discarded vote costs `L` polynomial
        // evaluations); the common all-voted case allocates nothing.
        let votes = &self.votes;
        let counterparts: Vec<PartyId> = self
            .points_from
            .keys()
            .copied()
            .filter(|&j| !votes.has_voted(j))
            .collect();
        for j in counterparts {
            if let Some(v) = self.compute_vote(j) {
                self.votes.add_vote(ctx, j, v);
            }
        }
    }

    fn dealer_try_publish_wef(&mut self, ctx: &mut Context<'_, Msg>) {
        if ctx.me != self.dealer || !self.distributed {
            return;
        }
        let graph = self.votes.graph_regular();
        let votes = &self.votes;
        let bivariates = &self.bivariates;
        let wef = dealer_compute_wef(
            &self.params,
            &graph,
            |i| votes.regular_noks_of(i),
            |i, j, ell, v| {
                bivariates
                    .get(ell as usize)
                    .is_none_or(|b| v != b.evaluate(alpha(j), alpha(i)))
            },
        );
        if let Some((w, e, f)) = wef {
            let value = BcValue::Wef {
                w: w.iter().map(|&x| x as u32).collect(),
                e: e.iter().map(|&x| x as u32).collect(),
                f: f.iter().map(|&x| x as u32).collect(),
            };
            if let Some(bc) = self.wef_bc.as_mut() {
                ctx.scoped(SEG_WEF_BC, |ctx| bc.provide_input(ctx, value));
            }
        }
    }

    fn dealer_try_publish_star(&mut self, ctx: &mut Context<'_, Msg>) {
        if ctx.me != self.dealer || self.star_published || self.ba_output != Some(true) {
            return;
        }
        let graph = self.votes.graph_any();
        if let Some((e, f)) = graph.find_star(self.params.ta, None) {
            self.star_published = true;
            let value = BcValue::Star {
                e: e.iter().map(|&x| x as u32).collect(),
                f: f.iter().map(|&x| x as u32).collect(),
            };
            let mut acast =
                crate::acast::Acast::new_sender(self.dealer, self.params.n, self.params.ts, value);
            ctx.scoped(SEG_STAR, |ctx| acast.init(ctx));
            self.star_acast = Some(acast);
        }
    }

    /// Attempts to produce the WPS-shares given the current state.
    fn try_output(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.shares.is_some() {
            return;
        }
        match self.ba_output {
            Some(false) => {
                // (W, E, F) path
                let wef = self.accepted_wef.clone().or_else(|| {
                    self.wef_bc
                        .as_ref()
                        .and_then(|bc| bc.value())
                        .and_then(decode_wef)
                });
                let Some((w, _e, f)) = wef else { return };
                self.output_via(ctx, &w, &f);
            }
            Some(true) => {
                // (n, t_a)-star path
                let Some(star) = self
                    .star_acast
                    .as_ref()
                    .and_then(|a| a.output.as_ref())
                    .and_then(decode_star)
                else {
                    return;
                };
                let (e, f) = star;
                if !self.votes.graph_any().is_star(self.params.ta, &e, &f, None) {
                    return;
                }
                self.output_via(ctx, &f, &f);
            }
            None => {}
        }
    }

    /// Outputs directly if this party belongs to `direct_set` and holds its
    /// rows, otherwise via OEC on the points received from the parties of
    /// `support_set`.
    fn output_via(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        direct_set: &[PartyId],
        support_set: &[PartyId],
    ) {
        let me = ctx.me;
        if direct_set.contains(&me) {
            if let Some(rows) = &self.my_rows {
                self.shares = Some(rows.iter().map(|r| r.constant_term()).collect());
                self.output_at = Some(ctx.now);
                return;
            }
        }
        // OEC(t_s, t_s, ·) on the common points received from `support_set`
        let ts = self.params.ts;
        let contributors: Vec<PartyId> = support_set
            .iter()
            .copied()
            .filter(|j| self.points_from.contains_key(j))
            .collect();
        // Fast path: every contributor sent a full batch, so all L values
        // share one evaluation-point vector and the OEC fast-path basis is
        // built once for the whole batch.
        if self.l_count > 0
            && contributors
                .iter()
                .all(|j| self.points_from[j].len() >= self.l_count)
        {
            let xs: Vec<Fp> = contributors.iter().map(|&j| alpha(j)).collect();
            let columns: Vec<Vec<Fp>> = (0..self.l_count)
                .map(|ell| {
                    contributors
                        .iter()
                        .map(|&j| self.points_from[&j][ell])
                        .collect()
                })
                .collect();
            let Some(polys) = rs::oec_decode_batch(ts, ts, &xs, &columns) else {
                return; // not enough consistent points yet
            };
            self.shares = Some(polys.iter().map(|p| p.constant_term()).collect());
            self.output_at = Some(ctx.now);
            return;
        }
        let mut shares = Vec::with_capacity(self.l_count);
        for ell in 0..self.l_count {
            let pts: Vec<(Fp, Fp)> = contributors
                .iter()
                .filter_map(|&j| {
                    self.points_from
                        .get(&j)
                        .and_then(|v| v.get(ell))
                        .map(|&p| (alpha(j), p))
                })
                .collect();
            match rs::oec_decode(ts, ts, &pts) {
                Some(poly) => shares.push(poly.constant_term()),
                None => return, // not enough consistent points yet
            }
        }
        self.shares = Some(shares);
        self.output_at = Some(ctx.now);
    }

    fn check_progress(&mut self, ctx: &mut Context<'_, Msg>) {
        if let Some(ba) = &self.ba {
            if self.ba_output.is_none() {
                self.ba_output = ba.output;
            }
        }
        self.dealer_try_publish_star(ctx);
        self.try_output(ctx);
    }
}

impl Protocol<Msg> for Wps {
    fn init(&mut self, ctx: &mut Context<'_, Msg>) {
        self.start = ctx.now;
        if ctx.me == self.dealer {
            if let Some(polys) = self.my_rows.take() {
                self.distribute(ctx, polys);
            }
        }
        ctx.set_timer(2 * ctx.delta, TIMER_VOTES);
        ctx.set_timer(2 * ctx.delta + self.params.t_bc(), TIMER_WEF);
        ctx.set_timer(2 * ctx.delta + 2 * self.params.t_bc(), TIMER_BA);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: PartyId,
        path: PathSlice<'_>,
        msg: Msg,
    ) {
        match path.first() {
            None => match msg {
                Msg::RowPolys(rows) if from == self.dealer && self.my_rows.is_none() => {
                    self.my_rows = Some(rows.into_iter().map(Polynomial::from_coeffs).collect());
                    self.schedule_point_sending(ctx);
                    self.refresh_votes(ctx);
                    self.check_progress(ctx);
                }
                Msg::Points(pts) => {
                    self.points_from.entry(from).or_insert(pts);
                    self.refresh_votes(ctx);
                    self.check_progress(ctx);
                }
                _ => {}
            },
            Some(&SEG_WEF_BC) => {
                if let Some(bc) = self.wef_bc.as_mut() {
                    ctx.scoped(SEG_WEF_BC, |ctx| bc.on_message(ctx, from, &path[1..], msg));
                } else {
                    self.pending.push((SEG_WEF_BC, from, msg));
                }
                self.check_progress(ctx);
            }
            Some(&SEG_BA) => {
                if let Some(ba) = self.ba.as_mut() {
                    ctx.scoped(SEG_BA, |ctx| ba.on_message(ctx, from, &path[1..], msg));
                } else {
                    self.pending.push((SEG_BA, from, msg));
                }
                self.check_progress(ctx);
            }
            Some(&SEG_STAR) => {
                let dealer = self.dealer;
                let acast = self.star_acast.get_or_insert_with(|| {
                    crate::acast::Acast::new(dealer, self.params.n, self.params.ts)
                });
                ctx.scoped(SEG_STAR, |ctx| acast.on_message(ctx, from, &path[1..], msg));
                self.check_progress(ctx);
            }
            Some(&seg) if self.votes.owns_segment(seg) => {
                self.votes.on_message(ctx, from, path, msg);
                self.check_progress(ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, path: PathSlice<'_>, id: u64) {
        match path.first() {
            None => match id {
                TIMER_SEND_POINTS => self.send_points(ctx),
                TIMER_VOTES => {
                    self.refresh_votes(ctx);
                    self.votes.start(ctx);
                }
                TIMER_WEF => {
                    let mut bc = Bc::new(self.dealer, self.params.ts, self.params);
                    ctx.scoped(SEG_WEF_BC, |ctx| bc.init(ctx));
                    self.wef_bc = Some(bc);
                    let pending = std::mem::take(&mut self.pending);
                    for (seg, from, msg) in pending {
                        if seg == SEG_WEF_BC {
                            let bc = self.wef_bc.as_mut().expect("just created");
                            ctx.scoped(SEG_WEF_BC, |ctx| bc.on_message(ctx, from, &[], msg));
                        } else {
                            self.pending.push((seg, from, msg));
                        }
                    }
                    self.dealer_try_publish_wef(ctx);
                }
                TIMER_BA => {
                    // acceptance check based on regular-mode votes
                    let accepted = self
                        .wef_bc
                        .as_ref()
                        .and_then(|bc| bc.regular_value())
                        .and_then(decode_wef)
                        .filter(|(w, e, f)| accept_wef(&self.params, &self.votes, w, e, f));
                    self.accepted_wef = accepted.clone();
                    let input = accepted.is_none(); // 0 = accepted, 1 = go for star
                    let mut ba = Ba::new(self.params.ts, self.params, Some(input));
                    ctx.scoped(SEG_BA, |ctx| ba.init(ctx));
                    self.ba = Some(ba);
                    let pending = std::mem::take(&mut self.pending);
                    for (seg, from, msg) in pending {
                        if seg == SEG_BA {
                            let ba = self.ba.as_mut().expect("just created");
                            ctx.scoped(SEG_BA, |ctx| ba.on_message(ctx, from, &[], msg));
                        } else {
                            self.pending.push((seg, from, msg));
                        }
                    }
                    self.check_progress(ctx);
                }
                _ => {}
            },
            Some(&SEG_WEF_BC) => {
                if let Some(bc) = self.wef_bc.as_mut() {
                    ctx.scoped(SEG_WEF_BC, |ctx| bc.on_timer(ctx, &path[1..], id));
                }
                self.check_progress(ctx);
            }
            Some(&SEG_BA) => {
                if let Some(ba) = self.ba.as_mut() {
                    ctx.scoped(SEG_BA, |ctx| ba.on_timer(ctx, &path[1..], id));
                }
                self.check_progress(ctx);
            }
            Some(&SEG_STAR) => {
                if let Some(acast) = self.star_acast.as_mut() {
                    ctx.scoped(SEG_STAR, |ctx| acast.on_timer(ctx, &path[1..], id));
                }
            }
            Some(&seg) if self.votes.owns_segment(seg) => {
                self.votes.on_timer(ctx, path, id);
                self.check_progress(ctx);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_net::{CorruptionSet, NetConfig, NetworkKind, Simulation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_parties(
        params: Params,
        dealer: PartyId,
        polys: Vec<Polynomial>,
    ) -> Vec<Box<dyn Protocol<Msg>>> {
        (0..params.n)
            .map(|i| {
                let w = if i == dealer {
                    Wps::new_dealer(dealer, params, polys.clone())
                } else {
                    Wps::new(dealer, params, polys.len())
                };
                Box::new(w) as Box<dyn Protocol<Msg>>
            })
            .collect()
    }

    fn check_shares(
        sim: &Simulation<Msg>,
        params: Params,
        polys: &[Polynomial],
        corrupt: &CorruptionSet,
    ) {
        for i in 0..params.n {
            if corrupt.is_corrupt(i) {
                continue;
            }
            let p = sim.party_as::<Wps>(i).unwrap();
            let shares = p.shares.as_ref().expect("honest party must have shares");
            for (ell, q) in polys.iter().enumerate() {
                assert_eq!(shares[ell], q.evaluate(alpha(i)), "party {i}, poly {ell}");
            }
        }
    }

    #[test]
    fn honest_dealer_sync_correctness_within_t_wps() {
        let params = Params::new(4, 1, 0, 10);
        let mut rng = StdRng::seed_from_u64(42);
        let polys = vec![
            Polynomial::random_with_constant_term(&mut rng, params.ts, Fp::from_u64(77)),
            Polynomial::random_with_constant_term(&mut rng, params.ts, Fp::from_u64(99)),
        ];
        let mut sim = Simulation::new(
            NetConfig::synchronous(params.n),
            CorruptionSet::none(),
            make_parties(params, 0, polys.clone()),
        );
        let done = sim.run_until(params.t_wps() + params.delta, |s| {
            (0..params.n).all(|i| s.party_as::<Wps>(i).unwrap().shares.is_some())
        });
        assert!(
            done,
            "WPS must complete within T_WPS in a synchronous network"
        );
        check_shares(&sim, params, &polys, &CorruptionSet::none());
        for i in 0..params.n {
            let at = sim.party_as::<Wps>(i).unwrap().output_at.unwrap();
            assert!(
                at <= params.t_wps(),
                "output at {at} > T_WPS {}",
                params.t_wps()
            );
        }
    }

    #[test]
    fn honest_dealer_async_eventual_correctness() {
        let params = Params::new(5, 1, 1, 10);
        let mut rng = StdRng::seed_from_u64(43);
        let polys = vec![Polynomial::random_with_constant_term(
            &mut rng,
            params.ts,
            Fp::from_u64(123),
        )];
        let corrupt = CorruptionSet::new(vec![4]);
        let mut sim = Simulation::new(
            NetConfig::asynchronous(params.n).with_seed(9),
            corrupt.clone(),
            make_parties(params, 0, polys.clone()),
        );
        let done = sim.run_until(50_000_000, |s| {
            (0..params.n)
                .filter(|&i| corrupt.is_honest(i))
                .all(|i| s.party_as::<Wps>(i).unwrap().shares.is_some())
        });
        assert!(
            done,
            "honest parties must eventually output in an asynchronous network"
        );
        check_shares(&sim, params, &polys, &corrupt);
    }

    #[test]
    fn silent_dealer_produces_no_output() {
        let params = Params::new(4, 1, 0, 10);
        let parties: Vec<Box<dyn Protocol<Msg>>> = (0..params.n)
            .map(|_| Box::new(Wps::new(0, params, 1)) as Box<dyn Protocol<Msg>>)
            .collect();
        let mut sim = Simulation::new(
            NetConfig::synchronous(params.n),
            CorruptionSet::new(vec![0]),
            parties,
        );
        sim.run_to_quiescence(params.t_wps() * 3);
        for i in 1..params.n {
            assert!(sim.party_as::<Wps>(i).unwrap().shares.is_none());
        }
    }

    #[test]
    fn privacy_any_ts_shares_leak_nothing() {
        // Structural privacy check backing Lemma 4.1: the shares of any t_s
        // parties are insufficient to reconstruct the secret (the adversary's
        // view — its t_s row polynomials — is consistent with every candidate
        // secret by Lemma 2.2).
        let params = Params::new(4, 1, 0, 10);
        let mut rng = StdRng::seed_from_u64(44);
        let polys = vec![Polynomial::random_with_constant_term(
            &mut rng,
            params.ts,
            Fp::from_u64(5),
        )];
        let mut sim = Simulation::new(
            NetConfig::synchronous(params.n),
            CorruptionSet::none(),
            make_parties(params, 2, polys),
        );
        let done = sim.run_until(params.t_wps() + params.delta, |s| {
            (0..params.n).all(|i| s.party_as::<Wps>(i).unwrap().shares.is_some())
        });
        assert!(done);
        // any t_s shares alone do not determine the degree-t_s polynomial
        let adversary_view: Vec<(usize, Fp)> = (0..params.ts)
            .map(|i| {
                (
                    i,
                    sim.party_as::<Wps>(i).unwrap().shares.as_ref().unwrap()[0],
                )
            })
            .collect();
        assert!(mpc_algebra::shamir::reconstruct(params.ts, &adversary_view).is_none());
    }

    #[test]
    fn works_in_async_network_for_both_network_kinds_same_code() {
        // the same party code runs in both network kinds (best-of-both-worlds)
        for kind in [NetworkKind::Synchronous, NetworkKind::Asynchronous] {
            let params = Params::new(4, 1, 0, 10);
            let mut rng = StdRng::seed_from_u64(45);
            let polys = vec![Polynomial::random_with_constant_term(
                &mut rng,
                params.ts,
                Fp::from_u64(8),
            )];
            let cfg = match kind {
                NetworkKind::Synchronous => NetConfig::synchronous(params.n),
                NetworkKind::Asynchronous => NetConfig::asynchronous(params.n),
            };
            let mut sim = Simulation::new(
                cfg.with_seed(3),
                CorruptionSet::none(),
                make_parties(params, 1, polys.clone()),
            );
            let done = sim.run_until(50_000_000, |s| {
                (0..params.n).all(|i| s.party_as::<Wps>(i).unwrap().shares.is_some())
            });
            assert!(done, "{kind:?}");
            check_shares(&sim, params, &polys, &CorruptionSet::none());
        }
    }
}
