//! Federated statistics: four hospitals jointly compute the sum and the sum
//! of squares of their private patient counts (from which mean and variance
//! are derived publicly), without revealing any individual count. The same
//! code is run twice — once over a synchronous network and once over an
//! asynchronous one — illustrating the best-of-both-worlds guarantee: the
//! parties never need to know which network they are on.
//!
//! Run with `cargo run --example federated_statistics`.

use bobw_mpc::core::{Circuit, MpcBuilder};
use bobw_mpc::net::NetworkKind;

fn sum_of_squares(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    let mut acc = c.mul(c.input(0), c.input(0));
    for i in 1..n {
        let sq = c.mul(c.input(i), c.input(i));
        acc = c.add(acc, sq);
    }
    c.set_output(acc);
    c
}

fn main() {
    let n = 4;
    let counts = [412u64, 389, 501, 444];
    let sum_circuit = Circuit::sum_of_inputs(n);
    let sq_circuit = sum_of_squares(n);

    println!("private patient counts  : {counts:?}");

    for kind in [NetworkKind::Synchronous, NetworkKind::Asynchronous] {
        let sum = MpcBuilder::new(n, 1, 0)
            .network(kind)
            .inputs(&counts)
            .run(&sum_circuit)
            .expect("sum run completes")
            .output
            .as_u64();
        let sumsq_run = MpcBuilder::new(n, 1, 0)
            .network(kind)
            .inputs(&counts)
            .run(&sq_circuit)
            .expect("sum-of-squares run completes");
        let sumsq = sumsq_run.output.as_u64();
        let mean = sum as f64 / n as f64;
        let variance = sumsq as f64 / n as f64 - mean * mean;
        println!("--- network: {kind:?}");
        println!("    Σ x_i  = {sum}");
        println!("    Σ x_i² = {sumsq}");
        println!("    mean = {mean:.2}, variance = {variance:.2}");
        println!("    finished at {} simulated ticks", sumsq_run.finished_at);
    }
}
