//! The headline property of the paper, demonstrated end to end on *both*
//! transport backends: the *same* protocol code is executed
//!
//! 1. over a synchronous network with the maximum tolerable `t_s` silent
//!    corruptions,
//! 2. over an adversarially scheduled asynchronous network (some honest
//!    parties' messages are delayed far beyond the bound `Δ` the protocol
//!    believes in) with up to `t_a` corruptions,
//!
//! and in both cases every honest party terminates with the same correct
//! output — without ever being told which network it was running on.
//!
//! Each scenario runs twice: once on the deterministic discrete-event
//! simulator, once on the threaded backend where every party is an OS thread
//! exchanging wire bytes over channels and every `Δ`-timer is a real
//! `recv_timeout` deadline. The frozen latency matrix is shared, so the two
//! runs must agree byte for byte — the simulator acts as the conformance
//! oracle for the real runtime, and on the threaded side the
//! synchronous→asynchronous fallback is triggered by genuine wall-clock
//! timeouts.
//!
//! Run with `cargo run --example network_fallback`.

use bobw_mpc::core::{Circuit, MpcBuilder, MpcRunResult};
use bobw_mpc::net::scheduler::SkewedAsyncScheduler;
use bobw_mpc::net::{Backend, LinkDelays, NetConfig, NetworkKind};
use bobw_mpc::protocols::Params;

fn run_both(label: &str, build: &dyn Fn(Backend) -> MpcBuilder, circuit: &Circuit) -> MpcRunResult {
    let sim = build(Backend::Simulator)
        .run(circuit)
        .expect("simulator run completes");
    let threaded = build(Backend::Threaded)
        .run(circuit)
        .expect("threaded run completes");
    assert_eq!(
        sim.outputs, threaded.outputs,
        "{label}: backends must produce byte-identical per-party outputs"
    );
    assert_eq!(
        sim.metrics.honest_bits_by_party, threaded.metrics.honest_bits_by_party,
        "{label}: backends must account identical per-party honest bits"
    );
    println!(
        "  {label:<11} output {:>4} on both backends ({} honest bits; threaded fired {} real timeouts)",
        sim.output.as_u64(),
        sim.metrics.honest_bits,
        threaded.metrics.timeouts_fired
    );
    threaded
}

fn main() {
    let n = 5;
    let seed = 7;
    let delta = NetConfig::DEFAULT_DELTA;
    let params = Params::max_thresholds(n, 10);
    println!(
        "n = {n}: best-of-both-worlds thresholds t_s = {}, t_a = {}",
        params.ts, params.ta
    );

    let mut circuit = Circuit::new(n);
    let p = circuit.mul(circuit.input(0), circuit.input(1));
    let q = circuit.mul(circuit.input(2), circuit.input(3));
    let s = circuit.add(p, q);
    let out = circuit.add(s, circuit.input(4));
    circuit.set_output(out);
    let inputs = [6u64, 7, 8, 9, 10];
    let expected = 6 * 7 + 8 * 9 + 10;

    // (1) synchronous network, t_s silent corruptions. Both backends run the
    // same frozen latency matrix: the simulator takes it as its scheduler,
    // the threaded backend stamps it onto packets.
    println!("synchronous network, {} silent corruption(s):", params.ts);
    let sync_links = LinkDelays::for_kind(n, NetworkKind::Synchronous, delta, seed);
    let sync = run_both(
        "sync",
        &|backend| {
            // `drain` runs both backends to full quiescence (the threaded
            // runtime has no global "output reached" view to stop at), so
            // the communication totals are comparable.
            let b = MpcBuilder::new(n, params.ts, params.ta)
                .network(NetworkKind::Synchronous)
                .seed(seed)
                .inputs(&inputs)
                .corrupt(&[n - 1])
                .drain(true)
                .transport(backend);
            match backend {
                Backend::Simulator => b.scheduler(Box::new(sync_links.clone())),
                Backend::Threaded | Backend::Tcp => b.link_delays(sync_links.clone()),
            }
        },
        &circuit,
    );
    println!(
        "  (expected with the crashed party's input zeroed: {})",
        6 * 7 + 8 * 9
    );

    // (2) asynchronous network: delay party 0's messages way beyond Δ. On
    // the threaded backend the honest parties' Δ-deadlines are *real*
    // recv_timeout expiries that elapse before the slow party's bytes
    // arrive — the fallback path is taken because of wall-clock time.
    println!("asynchronous network, adversarial delays on party 0:");
    let async_links = LinkDelays::sampled_from(
        n,
        seed,
        &mut SkewedAsyncScheduler {
            slowed_senders: vec![0],
            lag: 20 * delta,
            fast: 3,
        },
    );
    let asynch = run_both(
        "async",
        &|backend| {
            let b = MpcBuilder::new(n, params.ts, params.ta)
                .network(NetworkKind::Asynchronous)
                .seed(seed)
                .horizon_factor(64)
                .inputs(&inputs)
                .drain(true)
                .transport(backend);
            match backend {
                Backend::Simulator => b.scheduler(Box::new(async_links.clone())),
                Backend::Threaded | Backend::Tcp => b.link_delays(async_links.clone()),
            }
        },
        &circuit,
    );
    // In an asynchronous network the inputs of up to t_a slow-looking parties
    // may be excluded from the common subset; the output is f over the
    // included inputs with the rest zeroed (Theorem 7.1).
    let zeroed: Vec<u64> = (0..n)
        .map(|i| {
            if asynch.input_subset.contains(&i) {
                inputs[i]
            } else {
                0
            }
        })
        .collect();
    let expected_async = zeroed[0] * zeroed[1] + zeroed[2] * zeroed[3] + zeroed[4];
    println!(
        "  (inputs included: {:?}, expected on those: {expected_async}, all-inputs value would be {expected})",
        asynch.input_subset
    );
    println!(
        "completion times — sync: {} ticks, async: {} ticks (the async run pays for the delayed party)",
        sync.finished_at, asynch.finished_at
    );
}
