//! The headline property of the paper, demonstrated end to end: the *same*
//! protocol code is executed
//!
//! 1. over a synchronous network with the maximum tolerable `t_s` silent
//!    corruptions,
//! 2. over an adversarially scheduled asynchronous network (some honest
//!    parties' messages are delayed far beyond the bound `Δ` the protocol
//!    believes in) with up to `t_a` corruptions,
//!
//! and in both cases every honest party terminates with the same correct
//! output — without ever being told which network it was running on.
//!
//! Run with `cargo run --example network_fallback`.

use bobw_mpc::core::{Circuit, MpcBuilder};
use bobw_mpc::net::scheduler::SkewedAsyncScheduler;
use bobw_mpc::net::NetworkKind;
use bobw_mpc::protocols::Params;

fn main() {
    let n = 5;
    let params = Params::max_thresholds(n, 10);
    println!(
        "n = {n}: best-of-both-worlds thresholds t_s = {}, t_a = {}",
        params.ts, params.ta
    );

    let mut circuit = Circuit::new(n);
    let p = circuit.mul(circuit.input(0), circuit.input(1));
    let q = circuit.mul(circuit.input(2), circuit.input(3));
    let s = circuit.add(p, q);
    let out = circuit.add(s, circuit.input(4));
    circuit.set_output(out);
    let inputs = [6u64, 7, 8, 9, 10];
    let expected = 6 * 7 + 8 * 9 + 10;

    // (1) synchronous network, t_s silent corruptions
    let sync = MpcBuilder::new(n, params.ts, params.ta)
        .network(NetworkKind::Synchronous)
        .inputs(&inputs)
        .corrupt(&[n - 1])
        .run(&circuit)
        .expect("synchronous run completes");
    println!(
        "synchronous  + {} corruption(s): output {} (expected with the crashed party's input zeroed: {})",
        params.ts,
        sync.output.as_u64(),
        6 * 7 + 8 * 9
    );

    // (2) asynchronous network: delay party 0's messages way beyond Δ
    let asynch = MpcBuilder::new(n, params.ts, params.ta)
        .network(NetworkKind::Asynchronous)
        .scheduler(Box::new(SkewedAsyncScheduler {
            slowed_senders: vec![0],
            lag: 200, // 20× the assumed Δ
            fast: 3,
        }))
        .horizon_factor(64)
        .inputs(&inputs)
        .run(&circuit)
        .expect("asynchronous run completes");
    // In an asynchronous network the inputs of up to t_a slow-looking parties
    // may be excluded from the common subset; the output is f over the
    // included inputs with the rest zeroed (Theorem 7.1).
    let zeroed: Vec<u64> = (0..n)
        .map(|i| {
            if asynch.input_subset.contains(&i) {
                inputs[i]
            } else {
                0
            }
        })
        .collect();
    let expected_async = zeroed[0] * zeroed[1] + zeroed[2] * zeroed[3] + zeroed[4];
    println!(
        "asynchronous + adversarial delays: output {} (inputs included: {:?}, expected on those: {}, all-inputs value would be {expected})",
        asynch.output.as_u64(),
        asynch.input_subset,
        expected_async
    );
    println!(
        "completion times — sync: {} ticks, async: {} ticks (the async run pays for the delayed party)",
        sync.finished_at, asynch.finished_at
    );
}
