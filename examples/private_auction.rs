//! Sealed-bid auction analytics: five bidders learn the *total* committed
//! volume and a joint lottery value derived from all bids, without any bidder
//! (or any coalition of up to `t_s = 1` bidders) learning another party's
//! bid. One bidder crashes mid-auction — the protocol still terminates and
//! simply excludes the crashed bidder's input (it is outside the agreed
//! common subset `CS`), exactly as Theorem 7.1 prescribes.
//!
//! Run with `cargo run --example private_auction`.

use bobw_mpc::core::{Circuit, MpcBuilder};
use bobw_mpc::net::NetworkKind;

fn main() {
    let n = 5;
    let bids = [120u64, 95, 230, 310, 75];

    // Output 1: total committed volume Σ bids.
    let total = Circuit::sum_of_inputs(n);
    // Output 2: a joint "lottery" value Π bids (every bidder influences it,
    // nobody controls it) — one multiplication per bidder.
    let lottery = Circuit::product_of_inputs(n);

    println!("sealed bids (private)   : {bids:?}");

    // Honest run in a synchronous network.
    let r_total = MpcBuilder::new(n, 1, 0)
        .network(NetworkKind::Synchronous)
        .inputs(&bids)
        .run(&total)
        .expect("total-volume run completes");
    println!("total committed volume  : {}", r_total.output.as_u64());

    // The same lottery computation, but bidder 4 crashes (is corrupt/silent).
    let r_lottery = MpcBuilder::new(n, 1, 0)
        .network(NetworkKind::Synchronous)
        .inputs(&bids)
        .corrupt(&[4])
        .run(&lottery)
        .expect("lottery run completes despite the crashed bidder");
    println!("lottery value           : {}", r_lottery.output.as_u64());
    println!(
        "bidders included in CS  : {:?} (bidder 4 crashed, its input defaulted to 0)",
        r_lottery.input_subset
    );
    println!("simulated finish time   : {} ticks", r_lottery.finished_at);
}
