//! Quickstart: four parties jointly compute `x1·x2 + x3 + x4` without
//! revealing their inputs, tolerating one Byzantine corruption in a
//! synchronous network (and remaining secure against none in an asynchronous
//! one, per the paper's `3·t_s + t_a < n` condition for `n = 4`).
//!
//! Run with `cargo run --example quickstart`.

use bobw_mpc::core::{Circuit, MpcBuilder};
use bobw_mpc::net::NetworkKind;

fn main() {
    // f(x1, x2, x3, x4) = x1*x2 + x3 + x4
    let mut circuit = Circuit::new(4);
    let product = circuit.mul(circuit.input(0), circuit.input(1));
    let sum = circuit.add(circuit.input(2), circuit.input(3));
    let output = circuit.add(product, sum);
    circuit.set_output(output);

    let inputs = [3u64, 5, 7, 11];
    println!("private inputs          : {inputs:?} (never revealed to other parties)");
    println!(
        "circuit                 : x1*x2 + x3 + x4  (c_M = {}, D_M = {})",
        circuit.mult_count(),
        circuit.mult_depth()
    );

    let result = MpcBuilder::new(4, 1, 0)
        .network(NetworkKind::Synchronous)
        .inputs(&inputs)
        .run(&circuit)
        .expect("protocol run completes");

    println!("MPC output              : {}", result.output.as_u64());
    println!("expected (cleartext)    : {}", 3 * 5 + 7 + 11);
    println!("inputs included (CS)    : {:?}", result.input_subset);
    println!("simulated finish time   : {} ticks", result.finished_at);
    println!(
        "honest communication    : {} bits in {} messages",
        result.metrics.honest_bits, result.metrics.honest_messages
    );
}
