//! Demonstrates transcript recording: the simulator is a pure function of its
//! seed, so replaying a run with the same seed reproduces the exact event
//! sequence — the foundation for debugging adversarial schedules.
//!
//! ```sh
//! cargo run --example transcript_replay
//! ```

use bobw_mpc::algebra::Fp;
use bobw_mpc::net::{CorruptionSet, NetConfig, Protocol, Simulation};
use bobw_mpc::protocols::acast::Acast;
use bobw_mpc::protocols::{BcValue, Msg};

fn parties(n: usize, t: usize) -> Vec<Box<dyn Protocol<Msg>>> {
    let payload = BcValue::Value(vec![Fp::from_u64(99)]);
    (0..n)
        .map(|i| {
            let a = if i == 0 {
                Acast::new_sender(0, n, t, payload.clone())
            } else {
                Acast::new(0, n, t)
            };
            Box::new(a) as Box<dyn Protocol<Msg>>
        })
        .collect()
}

fn run(seed: u64) -> Simulation<Msg> {
    let n = 4;
    let t = 1;
    let mut sim = Simulation::new(
        NetConfig::asynchronous(n).with_seed(seed),
        CorruptionSet::none(),
        parties(n, t),
    );
    sim.record_transcript();
    let done = sim.run_until(10_000, |s| {
        (0..n).all(|i| s.party_as::<Acast>(i).unwrap().output.is_some())
    });
    assert!(done, "A-cast must deliver");
    sim
}

fn main() {
    let a = run(7);
    let b = run(7);
    let c = run(8);

    println!("A-cast among 4 parties on an adversarially-scheduled asynchronous network");
    println!(
        "run(seed=7): {} events, finished at t={}, {} honest bits",
        a.transcript().len(),
        a.now(),
        a.metrics().honest_bits
    );
    println!("first events of the transcript:");
    for entry in a.transcript().iter().take(5) {
        println!("  {entry:?}");
    }
    println!(
        "replay with seed 7 identical: {}",
        a.transcript() == b.transcript() && a.metrics() == b.metrics()
    );
    println!(
        "run with seed 8 diverges:     {}",
        a.transcript() != c.transcript()
    );
}
