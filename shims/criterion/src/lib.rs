//! Offline stand-in for the `criterion` crate (see `shims/README.md`).
//!
//! Implements the subset this workspace uses — [`Criterion::bench_function`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`criterion_group!`] and
//! [`criterion_main!`] — with a simple warm-up + timed-batches measurement
//! loop. Reports mean ns/iteration on stdout; no statistics, plots or
//! baseline comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of the standard black-box optimisation barrier.
pub use std::hint::black_box;

/// Batch sizing hint for [`Bencher::iter_batched`]. The shim honours the
/// general intent (smaller batches for larger inputs) but not exact batch
/// size semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Input is cheap to hold; large batches.
    SmallInput,
    /// Input is expensive to hold; small batches.
    LargeInput,
    /// One setup per routine invocation.
    PerIteration,
}

/// The benchmark driver handed to every registered benchmark function.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Far shorter than real criterion's 3s/5s: good enough for a
            // smoke-level perf signal without slowing `--benches` runs.
            warm_up_time: Duration::from_millis(50),
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the target measurement time.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some(ns_per_iter) => println!("{id:<40} {ns_per_iter:>12.1} ns/iter"),
            None => println!("{id:<40} (no measurement recorded)"),
        }
        self
    }
}

/// Times a routine inside [`Criterion::bench_function`].
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    result: Option<f64>,
}

impl Bencher {
    /// Measures `routine` called in a tight loop.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: also calibrates how many iterations fit in a batch.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up_time.as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut total_iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < self.measurement_time {
            for _ in 0..batch {
                black_box(routine());
            }
            total_iters += batch;
        }
        let elapsed = start.elapsed();
        self.result = Some(elapsed.as_secs_f64() * 1e9 / total_iters.max(1) as f64);
    }

    /// Measures `routine` with a fresh `setup()` input per call; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine(setup()));
        }

        let mut measured = Duration::ZERO;
        let mut total_iters: u64 = 0;
        let loop_start = Instant::now();
        while loop_start.elapsed() < self.measurement_time {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            measured += t.elapsed();
            total_iters += 1;
        }
        self.result = Some(measured.as_secs_f64() * 1e9 / total_iters.max(1) as f64);
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
