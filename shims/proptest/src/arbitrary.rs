//! The [`Arbitrary`] trait and the [`any`] strategy constructor.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::distributions::{Distribution, Standard};

/// Types with a canonical "generate any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T> Arbitrary for T
where
    Standard: Distribution<T>,
{
    fn arbitrary(rng: &mut TestRng) -> T {
        Standard.sample(rng)
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<A> {
    _marker: core::marker::PhantomData<A>,
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn new_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// A strategy generating any value of type `A`: `any::<u64>()`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        _marker: core::marker::PhantomData,
    }
}
