//! Collection strategies: [`vec()`].

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A length specification for collection strategies: an exact `usize` or a
/// half-open `usize` range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..self.size.max);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generates a `Vec` whose elements come from `element` and whose length is
/// drawn from `size` (an exact `usize` or a `usize` range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
