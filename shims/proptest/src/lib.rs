//! Offline stand-in for the `proptest` crate (see `shims/README.md`).
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(..)]` header, `prop_assert!`/`prop_assert_eq!`,
//! [`strategy::Strategy`] with `prop_map`, `any::<T>()`, integer ranges as
//! strategies, and [`collection::vec`]. Failing cases are reported with the
//! generated inputs but are **not shrunk**.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }` item
/// becomes a `#[test]` that runs `body` for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                    let __inputs = format!(
                        concat!("case ", "{}", $(concat!(", ", stringify!($arg), " = {:?}")),+),
                        __case $(, &$arg)+
                    );
                    $crate::test_runner::with_case_context(&__inputs, move || $body);
                }
            }
        )+
    };
}

/// Weighted union of strategies: `prop_oneof![w1 => s1, w2 => s2, ...]` (or
/// unweighted `prop_oneof![s1, s2, ...]`, where every case has weight 1).
/// All cases must generate the same value type. Unlike real proptest, mixed
/// weighted/unweighted entry lists are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new()$(.case($weight, $strat))+
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new()$(.case(1, $strat))+
    };
}

/// Like `assert!`, inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Like `assert_eq!`, inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Like `assert_ne!`, inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
