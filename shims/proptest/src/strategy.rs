//! The [`Strategy`] trait and basic combinators.

use crate::test_runner::TestRng;
use rand::distributions::uniform::{SampleRange, SampleUniform, Step};
use rand::Rng;

/// A recipe for generating values of type `Value`.
///
/// Unlike real proptest there is no shrinking: a strategy simply produces a
/// fresh value per case from the deterministic test RNG.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.map)(self.source.new_value(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for core::ops::Range<T>
where
    T: SampleUniform + PartialOrd + Copy + Step,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    T: SampleUniform + PartialOrd + Copy,
    core::ops::RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}
