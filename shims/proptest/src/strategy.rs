//! The [`Strategy`] trait and basic combinators.

use crate::test_runner::TestRng;
use rand::distributions::uniform::{SampleRange, SampleUniform, Step};
use rand::Rng;

/// A recipe for generating values of type `Value`.
///
/// Unlike real proptest there is no shrinking: a strategy simply produces a
/// fresh value per case from the deterministic test RNG.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.map)(self.source.new_value(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for core::ops::Range<T>
where
    T: SampleUniform + PartialOrd + Copy + Step,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    T: SampleUniform + PartialOrd + Copy,
    core::ops::RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.new_value(rng), self.1.new_value(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.new_value(rng),
            self.1.new_value(rng),
            self.2.new_value(rng),
        )
    }
}

/// One type-erased case of a [`OneOf`] union.
type OneOfCase<V> = (u32, Box<dyn Fn(&mut TestRng) -> V>);

/// Weighted union of strategies over a common value type — what the
/// [`crate::prop_oneof!`] macro builds. Each case is picked with probability
/// proportional to its weight.
pub struct OneOf<V> {
    cases: Vec<OneOfCase<V>>,
}

impl<V> OneOf<V> {
    /// An empty union (generating from it panics — add cases first).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        OneOf { cases: Vec::new() }
    }

    /// Adds one weighted case.
    pub fn case<S>(mut self, weight: u32, strategy: S) -> Self
    where
        S: Strategy<Value = V> + 'static,
    {
        assert!(weight > 0, "prop_oneof weights must be positive");
        self.cases
            .push((weight, Box::new(move |rng| strategy.new_value(rng))));
        self
    }
}

impl<V> core::fmt::Debug for OneOf<V> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "OneOf({} cases)", self.cases.len())
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let total: u32 = self.cases.iter().map(|(w, _)| w).sum();
        assert!(total > 0, "prop_oneof! needs at least one case");
        let mut pick = rng.gen_range(0..total);
        for (w, gen) in &self.cases {
            if pick < *w {
                return gen(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick within total")
    }
}
