//! Test execution support: configuration, the deterministic test RNG and
//! failure-context reporting.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline suite fast
        // while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies. Deterministically seeded from the test name,
/// so every run (and every CI machine) sees the same cases.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Runs one generated case, printing the generated inputs if it panics so
/// failures are reproducible despite the absence of shrinking.
pub fn with_case_context<F: FnOnce()>(inputs: &str, f: F) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    if let Err(payload) = result {
        eprintln!("proptest case failed: {inputs}");
        std::panic::resume_unwind(payload);
    }
}
