//! Distributions: the [`Distribution`] trait, the [`Standard`] distribution
//! and uniform range sampling.

use crate::Rng;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Samples one value from the distribution.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over all values for
/// integers, fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform range sampling (`rand::distributions::uniform`).
pub mod uniform {
    use crate::Rng;

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: Sized {
        /// Samples uniformly from `[low, high]` (both ends inclusive).
        ///
        /// # Panics
        /// Panics if `low > high`.
        fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    }

    /// Range types (`a..b`, `a..=b`) usable with [`Rng::gen_range`].
    ///
    /// [`Rng::gen_range`]: crate::Rng::gen_range
    pub trait SampleRange<T> {
        /// Samples a single value uniformly from `self`.
        ///
        /// # Panics
        /// Panics if the range is empty.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Draws a `u64` uniformly from `[0, span]` (inclusive) without modulo
    /// bias, by masked rejection sampling.
    fn uniform_u64_inclusive<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
        if span == u64::MAX {
            return rng.next_u64();
        }
        let width = span + 1;
        // Smallest all-ones mask covering `span`.
        let mask = u64::MAX >> (width | 1).leading_zeros();
        loop {
            let v = rng.next_u64() & mask;
            if v <= span {
                return v;
            }
        }
    }

    macro_rules! impl_sample_uniform_uint {
        ($($t:ty),*) => {
            $(
                impl SampleUniform for $t {
                    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                        assert!(low <= high, "gen_range: empty range");
                        let span = (high as u64).wrapping_sub(low as u64);
                        low.wrapping_add(uniform_u64_inclusive(rng, span) as $t)
                    }
                }
            )*
        };
    }

    impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_sample_uniform_int {
        ($($t:ty => $u:ty),*) => {
            $(
                impl SampleUniform for $t {
                    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                        assert!(low <= high, "gen_range: empty range");
                        let span = (high as $u).wrapping_sub(low as $u) as u64;
                        low.wrapping_add(uniform_u64_inclusive(rng, span) as $t)
                    }
                }
            )*
        };
    }

    impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

    impl<T: SampleUniform + PartialOrd + Copy + Step> SampleRange<T> for core::ops::Range<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range: empty range");
            T::sample_inclusive(rng, self.start, T::prev(self.end))
        }
    }

    impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            T::sample_inclusive(rng, *self.start(), *self.end())
        }
    }

    /// Internal helper: predecessor of an integer (for half-open ranges).
    pub trait Step {
        /// Returns `self - 1`.
        fn prev(self) -> Self;
    }

    macro_rules! impl_step {
        ($($t:ty),*) => {
            $(impl Step for $t { fn prev(self) -> Self { self - 1 } })*
        };
    }

    impl_step!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}
