//! Offline stand-in for the `rand` crate (see `shims/README.md`).
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! [`Rng`], [`SeedableRng`], [`rngs::StdRng`] and
//! [`distributions::Distribution`]/[`distributions::Standard`].
//!
//! `StdRng` is xoshiro256\*\* seeded through SplitMix64 — deterministic and
//! high quality, but a *different stream* than real rand's ChaCha12 `StdRng`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next random `u64` from the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` from the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        // 53 random bits give a uniform float in [0, 1).
        let v = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        v < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = rngs::SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}
