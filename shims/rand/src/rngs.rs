//! Concrete generator implementations.

use crate::{RngCore, SeedableRng};

/// SplitMix64 — used to expand small seeds into full generator state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 stream from a `u64` seed.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// Returns the next value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The standard deterministic generator: xoshiro256\*\*.
///
/// API-compatible with rand 0.8's `StdRng` (which is ChaCha12-based); the
/// output stream differs, but everything in this workspace only relies on
/// determinism, not the specific stream.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        StdRng { s }
    }
}
