//! Offline stand-in for the `serde` crate (see `shims/README.md`).
//!
//! [`Serialize`] and [`Deserialize`] are **marker traits only** — no actual
//! serialization happens. The derive macros (re-exported from the local
//! `serde_derive` shim) emit empty trait impls, which keeps the in-tree
//! `#[derive(Serialize, Deserialize)]` annotations and any `T: Serialize`
//! bounds compiling so the real serde can be dropped in later unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that would be serializable with the real serde.
pub trait Serialize {}

/// Marker for types that would be deserializable with the real serde.
pub trait Deserialize<'de> {}
