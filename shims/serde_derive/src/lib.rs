//! Offline stand-in for `serde_derive` (see `shims/README.md`).
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` emit an *empty* impl of
//! the corresponding marker trait from the local `serde` shim. Generic types
//! get no impl (the marker traits are never used as bounds in-tree, so this
//! only matters once real serde is restored).

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the deriving type: the identifier following the
/// `struct`/`enum`/`union` keyword, provided it is not generic.
fn type_name(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(kw) = &tt {
            let kw = kw.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    let generic = matches!(
                        tokens.peek(),
                        Some(TokenTree::Punct(p)) if p.as_char() == '<'
                    );
                    if !generic {
                        return Some(name.to_string());
                    }
                }
                return None;
            }
        }
    }
    None
}

/// Derives the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .expect("valid impl block"),
        None => TokenStream::new(),
    }
}

/// Derives the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .expect("valid impl block"),
        None => TokenStream::new(),
    }
}
