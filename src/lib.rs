//! # bobw-mpc — facade crate
//!
//! Re-exports the whole best-of-both-worlds MPC stack (PODC 2022,
//! Appan–Chandramouli–Choudhury) under a single dependency.
//!
//! * [`algebra`] — finite field, polynomials, Shamir sharing, Reed–Solomon.
//! * [`net`] — deterministic network simulator (synchronous / asynchronous)
//!   with a canonical wire codec (exact bit accounting) and pluggable
//!   wire-level Byzantine strategies.
//! * [`protocols`] — A-cast, broadcast, Byzantine agreement, WPS, VSS, ACS.
//! * [`core`] — Beaver triples, preprocessing and circuit evaluation.
//!
//! ```rust
//! use bobw_mpc::core::{Circuit, MpcBuilder};
//! use bobw_mpc::net::NetworkKind;
//!
//! // f(x1,..,x4) = x1*x2 + x3 + x4 over GF(2^61-1)
//! let mut c = Circuit::new(4);
//! let prod = c.mul(c.input(0), c.input(1));
//! let s = c.add(c.input(2), c.input(3));
//! let out = c.add(prod, s);
//! c.set_output(out);
//!
//! let result = MpcBuilder::new(4, 1, 0)
//!     .network(NetworkKind::Synchronous)
//!     .inputs(&[3, 5, 7, 11])
//!     .run(&c)
//!     .expect("protocol run succeeds");
//! assert_eq!(result.output.as_u64(), 3 * 5 + 7 + 11);
//! ```

pub use mpc_algebra as algebra;
pub use mpc_core as core;
pub use mpc_net as net;
pub use mpc_protocols as protocols;
