//! Equivalence suite pinning the algebra fast paths to the reference
//! semantics.
//!
//! Every optimisation of this layer — the `O(n²)` master-polynomial
//! interpolation, batched inversion, the barycentric Lagrange coefficients,
//! the domain-cached `λ` vectors and the incremental OEC — must be an
//! *observationally pure* speedup: on every input the fast path returns
//! exactly what the textbook implementation returned. The textbook versions
//! are retained as `Polynomial::interpolate_reference` and
//! `rs::oec_decode_reference` precisely so this file can say so with
//! proptest rather than by inspection.

use bobw_mpc::algebra::evaluation_points::{alpha, slot};
use bobw_mpc::algebra::{rs, shamir, EvalDomain, Fp, LagrangeBasis, PackedDomain, Polynomial};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fp(v: u64) -> Fp {
    Fp::from_u64(v)
}

/// Distinct pseudo-random x coordinates derived from a seed.
fn distinct_xs(seed: u64, k: usize) -> Vec<Fp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(k);
    while xs.len() < k {
        let x = Fp::random(&mut rng);
        if !xs.contains(&x) {
            xs.push(x);
        }
    }
    xs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fast O(n²) interpolation == textbook O(n³) interpolation.
    #[test]
    fn interpolate_matches_reference(
        seed in any::<u64>(),
        k in 1usize..24,
        ys in proptest::collection::vec(any::<u64>(), 24),
    ) {
        let xs = distinct_xs(seed, k);
        let points: Vec<(Fp, Fp)> = xs
            .into_iter()
            .zip(ys.iter().map(|&y| fp(y)))
            .collect();
        prop_assert_eq!(
            Polynomial::interpolate(&points),
            Polynomial::interpolate_reference(&points)
        );
    }

    /// Batched inversion == per-element Fermat inversion.
    #[test]
    fn batch_inverse_matches_inverse(
        vs in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let mut batch: Vec<Fp> = vs.iter().map(|&v| fp(v)).collect();
        Fp::batch_inverse(&mut batch);
        for (&v, &got) in vs.iter().zip(&batch) {
            prop_assert_eq!(got, fp(v).inverse().unwrap_or(Fp::ZERO));
        }
    }

    /// Barycentric/batched Lagrange coefficients == per-coefficient formula,
    /// including targets that coincide with an interpolation point.
    #[test]
    fn lagrange_coefficients_match_reference(
        seed in any::<u64>(),
        k in 1usize..16,
        target in any::<u64>(),
        hit in any::<usize>(),
    ) {
        let xs = distinct_xs(seed, k);
        for target in [fp(target), xs[hit % k]] {
            let fast = Polynomial::lagrange_coefficients(&xs, target);
            // reference: direct product formula with one inversion per point
            let slow: Vec<Fp> = (0..k)
                .map(|i| {
                    let mut num = Fp::ONE;
                    let mut den = Fp::ONE;
                    for j in 0..k {
                        if i != j {
                            num *= target - xs[j];
                            den *= xs[i] - xs[j];
                        }
                    }
                    num * den.inverse().expect("distinct points")
                })
                .collect();
            prop_assert_eq!(&fast, &slow);
        }
    }

    /// Domain-cached subset λ-at-zero reconstruction == generic
    /// interpolation's constant term.
    #[test]
    fn domain_lambda_reconstruction_matches_interpolation(
        seed in any::<u64>(),
        n in 4usize..20,
        deg in 1usize..6,
    ) {
        let deg = deg.min(n - 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = Polynomial::random(&mut rng, deg);
        let domain = EvalDomain::get(n);
        // random subset of deg + 1 distinct parties
        let mut indices: Vec<usize> = (0..n).collect();
        for i in (1..indices.len()).rev() {
            indices.swap(i, rng.gen_range(0..=i));
        }
        indices.truncate(deg + 1);
        let lambda = domain.lagrange_at_zero(&indices);
        let recon: Fp = indices
            .iter()
            .zip(&lambda)
            .map(|(&i, &l)| l * f.evaluate(alpha(i)))
            .sum();
        let points: Vec<(Fp, Fp)> = indices
            .iter()
            .map(|&i| (alpha(i), f.evaluate(alpha(i))))
            .collect();
        prop_assert_eq!(recon, Polynomial::interpolate(&points).constant_term());
        prop_assert_eq!(recon, f.constant_term());
    }

    /// Cached-basis interpolation and λ evaluation == generic paths.
    #[test]
    fn basis_paths_match_generic(
        seed in any::<u64>(),
        k in 1usize..16,
        target in any::<u64>(),
        ys in proptest::collection::vec(any::<u64>(), 16),
    ) {
        let xs = distinct_xs(seed, k);
        let ys: Vec<Fp> = ys[..k].iter().map(|&y| fp(y)).collect();
        let basis = LagrangeBasis::new(xs.clone());
        let points: Vec<(Fp, Fp)> = xs.iter().copied().zip(ys.iter().copied()).collect();
        let f = Polynomial::interpolate(&points);
        prop_assert_eq!(basis.interpolate(&ys), f.clone());
        prop_assert_eq!(basis.eval_at(&ys, fp(target)), f.evaluate(fp(target)));
    }

    /// Incremental OEC == the pre-optimisation retry loop on random
    /// corruption patterns — including *beyond-model* patterns with more
    /// than `t` corrupted points (where both must fail safe identically)
    /// and the over-supplied regime `k > d + 2t + 1` reached when
    /// `t_a > 0`.
    #[test]
    fn oec_decode_matches_reference(
        seed in any::<u64>(),
        d in 1usize..5,
        t in 1usize..5,
        extra in 0usize..6,
        errors in 0usize..7,
        missing in 0usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = Polynomial::random(&mut rng, d);
        let k = (d + t + 1 + extra + t).saturating_sub(missing).max(1);
        let mut pts: Vec<(Fp, Fp)> =
            (0..k).map(|i| (alpha(i), f.evaluate(alpha(i)))).collect();
        let errors = errors.min(k);
        let mut corrupted = std::collections::HashSet::new();
        while corrupted.len() < errors {
            corrupted.insert(rng.gen_range(0..k));
        }
        for &i in &corrupted {
            pts[i].1 += Fp::from_u64(rng.gen_range(1..1_000_000));
        }
        let fast = rs::oec_decode(d, t, &pts);
        let reference = rs::oec_decode_reference(d, t, &pts);
        prop_assert_eq!(&fast, &reference);
        // Whenever the corruption stays within what the OEC bound may
        // ignore, the unique codeword must come back out.
        if k > d + t && errors <= (k - (d + t + 1)).min(t) {
            prop_assert_eq!(fast, Some(f));
        }
    }

    /// Batched OEC over shared x coordinates == per-value OEC.
    #[test]
    fn oec_decode_batch_matches_per_value(
        seed in any::<u64>(),
        d in 1usize..4,
        t in 1usize..4,
        values in 1usize..5,
        errors in 0usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = d + 2 * t + 1;
        let xs: Vec<Fp> = (0..k).map(alpha).collect();
        let mut columns = Vec::with_capacity(values);
        let mut per_value = Vec::with_capacity(values);
        for _ in 0..values {
            let f = Polynomial::random(&mut rng, d);
            let mut ys: Vec<Fp> = xs.iter().map(|&x| f.evaluate(x)).collect();
            for _ in 0..errors.min(t) {
                let i = rng.gen_range(0..k);
                ys[i] += Fp::from_u64(rng.gen_range(1..1000));
            }
            let points: Vec<(Fp, Fp)> =
                xs.iter().copied().zip(ys.iter().copied()).collect();
            per_value.push(rs::oec_decode(d, t, &points));
            columns.push(ys);
        }
        let batch = rs::oec_decode_batch(d, t, &xs, &columns);
        match batch {
            Some(polys) => {
                for (got, want) in polys.iter().zip(&per_value) {
                    prop_assert_eq!(Some(got.clone()), want.clone());
                }
            }
            None => prop_assert!(per_value.iter().any(|p| p.is_none())),
        }
    }

    /// Packed share → reconstruct is the identity on the slot values, the
    /// dealt polynomial respects the `ts + ℓ − 1` degree budget, and robust
    /// reconstruction corrects up to `t` corrupted shares to the same values.
    #[test]
    fn packed_share_reconstruct_roundtrip(
        seed in any::<u64>(),
        ell in 1usize..5,
        ts in 0usize..3,
        vals in proptest::collection::vec(any::<u64>(), 4),
        errors in 0usize..3,
    ) {
        let n = 13; // plenty of room: needs ts + ell + 2·errors ≤ n
        let mut rng = StdRng::seed_from_u64(seed);
        let dom = PackedDomain::get(n, ell);
        let values: Vec<Fp> = vals[..ell].iter().map(|&v| fp(v)).collect();
        let sharing = dom.share(&mut rng, &values, ts);
        let degree = ts + ell - 1;
        prop_assert!(sharing.polynomial.degree() <= degree);
        for (k, &v) in values.iter().enumerate() {
            prop_assert_eq!(sharing.polynomial.evaluate(slot(k)), v);
        }
        let all: Vec<(usize, Fp)> =
            sharing.shares.iter().copied().enumerate().collect();
        prop_assert_eq!(
            dom.reconstruct(degree, &all[..degree + 1]),
            Some(values.clone())
        );
        // corrupt up to `errors` shares; OEC must still return the values
        let t = errors.max(1);
        let mut noisy = all.clone();
        for (i, share) in noisy.iter_mut().enumerate().take(errors) {
            share.1 += fp(1 + i as u64);
        }
        prop_assert_eq!(
            dom.reconstruct_robust(degree, t, &noisy),
            Some(values)
        );
    }

    /// `shamir::share_at` positions the secret at an arbitrary point with
    /// the exact degree asked for, and reconstruction at that point from any
    /// `degree + 1` shares recovers it.
    #[test]
    fn share_at_positions_and_reconstructs(
        seed in any::<u64>(),
        value in any::<u64>(),
        k in 0usize..4,
        degree in 1usize..5,
    ) {
        let n = 10;
        let mut rng = StdRng::seed_from_u64(seed);
        let position = slot(k);
        let sharing = shamir::share_at(&mut rng, fp(value), position, degree, n);
        prop_assert_eq!(sharing.shares.len(), n);
        prop_assert!(sharing.polynomial.degree() <= degree);
        let pts: Vec<(Fp, Fp)> = (0..degree + 1)
            .map(|i| (alpha(i), sharing.shares[i]))
            .collect();
        let f = Polynomial::interpolate(&pts);
        prop_assert_eq!(f.evaluate(position), fp(value));
        // all n shares lie on the same degree-`degree` polynomial
        for (i, &s) in sharing.shares.iter().enumerate() {
            prop_assert_eq!(f.evaluate(alpha(i)), s);
        }
    }

    /// `pack_share` (the local slot→packed linear combination) == dealing
    /// the packed sharing directly: packing per-slot sharings of degree `d`
    /// yields shares of a degree `d + ℓ − 1` polynomial hitting each value
    /// at its slot.
    #[test]
    fn pack_share_matches_direct_packed_sharing(
        seed in any::<u64>(),
        ell in 1usize..5,
        d in 1usize..3,
        vals in proptest::collection::vec(any::<u64>(), 4),
    ) {
        let n = 13;
        let mut rng = StdRng::seed_from_u64(seed);
        let dom = PackedDomain::get(n, ell);
        let values: Vec<Fp> = vals[..ell].iter().map(|&v| fp(v)).collect();
        // slot-positioned scalar sharings, one per slot
        let slot_sharings: Vec<Vec<Fp>> = values
            .iter()
            .enumerate()
            .map(|(k, &v)| shamir::share_at(&mut rng, v, slot(k), d, n).shares)
            .collect();
        let packed: Vec<(usize, Fp)> = (0..n)
            .map(|i| {
                let per_slot: Vec<Fp> =
                    slot_sharings.iter().map(|s| s[i]).collect();
                (i, dom.pack_share(i, &per_slot))
            })
            .collect();
        prop_assert_eq!(dom.reconstruct(d + ell - 1, &packed), Some(values));
    }
}

/// Deterministic spot check: a full-domain reconstruction dot product equals
/// the generic robust reconstruction.
#[test]
fn full_domain_dot_product_matches_robust_reconstruction() {
    let mut rng = StdRng::seed_from_u64(7);
    let n = 13;
    let t = 4;
    let domain = EvalDomain::get(n);
    let f = Polynomial::random_with_constant_term(&mut rng, t, fp(424_242));
    let shares: Vec<Fp> = domain.alphas().iter().map(|&a| f.evaluate(a)).collect();
    assert_eq!(domain.reconstruct_at_zero(&shares), fp(424_242));
    let indexed: Vec<(usize, Fp)> = shares.iter().copied().enumerate().collect();
    assert_eq!(
        bobw_mpc::algebra::shamir::reconstruct_robust(t, t, &indexed),
        Some(fp(424_242))
    );
}
