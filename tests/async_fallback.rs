//! Best-of-both-worlds behaviour under adversarial asynchrony: the protocol's
//! `Δ`-based time-outs all expire "too early", yet safety and liveness are
//! preserved — the asynchronous fallback paths (A-cast fallback mode of
//! `Π_BC`, the `(n, t_a)`-star path of `Π_WPS`/`Π_VSS`, almost-sure ABA
//! termination) take over.

use bobw_mpc::core::{Circuit, MpcBuilder};
use bobw_mpc::net::scheduler::{SkewedAsyncScheduler, UniformDelay};
use bobw_mpc::net::NetworkKind;

#[test]
fn adversarially_delayed_honest_party_does_not_break_safety() {
    let n = 4;
    let circuit = Circuit::product_of_inputs(n);
    let inputs = [2u64, 3, 5, 7];
    let result = MpcBuilder::new(n, 1, 0)
        .network(NetworkKind::Asynchronous)
        .scheduler(Box::new(SkewedAsyncScheduler {
            slowed_senders: vec![2],
            lag: 150, // 15× the assumed Δ — party 2 looks crashed to everyone
            fast: 2,
        }))
        .horizon_factor(64)
        .inputs(&inputs)
        .run(&circuit)
        .expect("protocol must stay live under adversarial asynchrony");
    // Party 2 is honest, merely slow. Its input may or may not make the
    // common subset (that is allowed in an asynchronous network), but the
    // output must be the correct product over the included inputs.
    let included = &result.input_subset;
    let expected: u64 = (0..n)
        .map(|i| if included.contains(&i) { inputs[i] } else { 0 })
        .product();
    assert_eq!(result.output.as_u64(), expected);
    assert!(
        included.len() >= n - 1,
        "at least n - t_s inputs are included"
    );
}

#[test]
fn fast_async_network_is_responsive() {
    // With an actual delay δ much smaller than Δ, the asynchronous run
    // completes earlier (in simulated time) than the worst-case synchronous
    // run of the very same circuit — the responsiveness argument from the
    // paper's introduction.
    let n = 4;
    let circuit = Circuit::sum_of_inputs(n);
    let inputs = [1u64, 2, 3, 4];
    let sync = MpcBuilder::new(n, 1, 0)
        .network(NetworkKind::Synchronous)
        .inputs(&inputs)
        .run(&circuit)
        .expect("sync run");
    let fast_async = MpcBuilder::new(n, 1, 0)
        .network(NetworkKind::Asynchronous)
        .scheduler(Box::new(UniformDelay { min: 1, max: 2 }))
        .inputs(&inputs)
        .run(&circuit)
        .expect("fast async run");
    assert_eq!(sync.output, fast_async.output);
    assert!(
        fast_async.finished_at < sync.finished_at,
        "fast async ({}) should beat worst-case sync ({})",
        fast_async.finished_at,
        sync.finished_at
    );
}
