//! Wire-level Byzantine behaviours ([`bobw_mpc::net::ByzantineStrategy`]):
//! corrupt parties run honest protocol code while the adversary rewrites the
//! *bytes* they put on the wire. Undecodable bytes must be absorbed at the
//! delivery boundary as Byzantine input — dropped and counted, never a panic
//! — and the honest parties must keep every protocol guarantee.

use bobw_mpc::algebra::Fp;
use bobw_mpc::net::{
    CorruptionSet, Crash, EquivocateBroadcast, GarbleBytes, NetConfig, Protocol, Simulation,
    TranscriptEvent, WireEncode,
};
use bobw_mpc::protocols::acast::Acast;
use bobw_mpc::protocols::bc::Bc;
use bobw_mpc::protocols::sba::Sba;
use bobw_mpc::protocols::{AcastMsg, BcValue, Msg, Params};

fn bc_parties(params: Params, payload: BcValue) -> Vec<Box<dyn Protocol<Msg>>> {
    (0..params.n)
        .map(|i| {
            let bc = if i == 0 {
                Bc::new_sender(0, params.ts, params, payload.clone())
            } else {
                Bc::new(0, params.ts, params)
            };
            Box::new(bc) as Box<dyn Protocol<Msg>>
        })
        .collect()
}

/// Acceptance scenario of the wire layer: two corrupt parties garble every
/// byte they send during a `Π_BC` broadcast with an honest sender. The run
/// must complete without panicking and every honest party must still output
/// the sender's value at `T_BC`.
#[test]
fn garbled_bytes_do_not_stop_bc_with_honest_sender() {
    let params = Params::new(7, 2, 0, 10);
    let payload = BcValue::Value(vec![Fp::from_u64(41), Fp::from_u64(43)]);
    let corrupt = CorruptionSet::new(vec![5, 6]);
    let mut sim = Simulation::new(
        NetConfig::synchronous(params.n),
        corrupt.clone(),
        bc_parties(params, payload.clone()),
    );
    sim.set_strategy(Box::new(GarbleBytes));
    sim.record_transcript();
    sim.run_to_quiescence(params.t_bc() * 4);
    for i in corrupt.honest_parties(params.n) {
        assert_eq!(
            sim.party_as::<Bc>(i).unwrap().value(),
            Some(&payload),
            "honest party {i} must deliver the honest sender's value"
        );
    }
    assert!(sim.metrics().adversary_tampered > 0, "garbling must fire");
    assert!(
        sim.metrics().decode_failures > 0,
        "some garbled payloads must fail to decode and be dropped cleanly"
    );
    // every boundary drop leaves an auditable trace in the transcript
    let dropped = sim
        .transcript()
        .iter()
        .filter(|e| matches!(e.event, TranscriptEvent::DroppedDeliver { .. }))
        .count() as u64;
    assert_eq!(dropped, sim.metrics().decode_failures);
}

/// Byte-level equivocation: the corrupt A-cast sender runs honest code with
/// value A, but the strategy substitutes the canonical encoding of value B on
/// every broadcast copy addressed to the upper half of the parties. Bracha's
/// protocol must still prevent two honest parties from delivering different
/// values.
#[test]
fn byte_level_equivocation_cannot_split_acast() {
    let n = 7;
    let t = 2;
    let value_a = BcValue::Bit(false);
    let value_b = BcValue::Bit(true);
    let mut parties: Vec<Box<dyn Protocol<Msg>>> = (0..n)
        .map(|_| Box::new(Acast::new(0, n, t)) as Box<dyn Protocol<Msg>>)
        .collect();
    parties[0] = Box::new(Acast::new_sender(0, n, t, value_a));
    let mut sim = Simulation::new(
        NetConfig::synchronous(n),
        CorruptionSet::new(vec![0]),
        parties,
    );
    sim.set_strategy(Box::new(EquivocateBroadcast {
        alt: Msg::Acast(AcastMsg::Send(value_b)).encode(),
    }));
    sim.run_to_quiescence(100_000);
    let delivered: Vec<BcValue> = (1..n)
        .filter_map(|i| sim.party_as::<Acast>(i).unwrap().output.clone())
        .collect();
    assert!(
        delivered.windows(2).all(|w| w[0] == w[1]),
        "no two honest parties may deliver different values: {delivered:?}"
    );
    assert!(sim.metrics().adversary_tampered > 0);
}

/// Wire-level crash: a corrupt phase-0 king whose messages are all dropped
/// on the wire is indistinguishable from the behavioural `SilentParty`;
/// phase-king agreement must survive via the later honest kings.
#[test]
fn crashed_king_on_the_wire_preserves_sba_agreement() {
    let n = 7;
    let t = 2;
    let parties: Vec<Box<dyn Protocol<Msg>>> = (0..n)
        .map(|i| {
            let input = Some(BcValue::Bit(i % 2 == 0));
            Box::new(Sba::new(n, t, input)) as Box<dyn Protocol<Msg>>
        })
        .collect();
    let mut sim = Simulation::new(
        NetConfig::synchronous(n),
        CorruptionSet::new(vec![0]),
        parties,
    );
    sim.set_strategy(Box::new(Crash));
    sim.run_to_quiescence(100_000);
    let outs: Vec<_> = (1..n)
        .map(|i| sim.party_as::<Sba>(i).unwrap().output.clone().unwrap())
        .collect();
    assert!(outs.windows(2).all(|w| w[0] == w[1]));
    assert!(sim.metrics().adversary_drops > 0);
    assert_eq!(sim.metrics().corrupt_messages, 0);
}

/// Corruption-placement sweep: wherever the `t_s` garbling corruptions sit
/// (seed-derived via `CorruptionSet::random`), `Π_BC` with an honest sender
/// keeps liveness and consistency.
#[test]
fn garbling_survives_random_corruption_placements() {
    let params = Params::new(7, 2, 0, 10);
    let payload = BcValue::Bit(true);
    for seed in 0..5u64 {
        let corrupt = {
            // never corrupt the sender in this honest-sender scenario
            let mut c = CorruptionSet::random(params.n - 1, params.ts, seed)
                .corrupt_parties()
                .to_vec();
            for p in &mut c {
                *p += 1;
            }
            CorruptionSet::new(c)
        };
        let mut sim = Simulation::new(
            NetConfig::synchronous(params.n).with_seed(seed),
            corrupt.clone(),
            bc_parties(params, payload.clone()),
        );
        sim.set_strategy(Box::new(GarbleBytes));
        sim.run_to_quiescence(params.t_bc() * 4);
        for i in corrupt.honest_parties(params.n) {
            assert_eq!(
                sim.party_as::<Bc>(i).unwrap().value(),
                Some(&payload),
                "seed {seed}: honest party {i} must deliver"
            );
        }
    }
}

/// Runs with a Byzantine strategy stay fully deterministic: the adversary
/// draws from its own seed-derived RNG.
#[test]
fn strategy_runs_are_deterministic() {
    let run = || {
        let params = Params::new(7, 2, 0, 10);
        let mut sim = Simulation::new(
            NetConfig::synchronous(params.n),
            CorruptionSet::new(vec![5, 6]),
            bc_parties(params, BcValue::Bit(false)),
        );
        sim.set_strategy(Box::new(GarbleBytes));
        sim.run_to_quiescence(params.t_bc() * 4);
        (sim.now(), sim.metrics().clone())
    };
    assert_eq!(run(), run());
}
