//! Circuit layering and layer-batched evaluation equivalence.
//!
//! `Circuit::layers()` drives `Π_CirEval`'s layer-batched Beaver openings:
//! one public reconstruction of `2·L` maskings per multiplication layer
//! instead of one per gate. These tests check the layering invariants over
//! randomly generated wide/deep DAG circuits, and that the layer-batched
//! shared evaluation produces exactly the cleartext result — and exactly the
//! per-gate reference path's result — on real simulated runs.

use bobw_mpc::algebra::Fp;
use bobw_mpc::core::{Circuit, Gate, MpcBuilder};
use bobw_mpc::net::NetworkKind;
use proptest::prelude::*;

/// A recipe for one random DAG circuit: a list of gate constructors applied
/// to pseudo-randomly chosen earlier wires.
#[derive(Clone, Debug)]
enum Op {
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    MulConst(usize, u64),
    AddConst(usize, u64),
    Constant(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        1 => (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Add(a, b)),
        1 => (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Sub(a, b)),
        3 => (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Mul(a, b)),
        1 => (any::<usize>(), 0u64..100).prop_map(|(a, c)| Op::MulConst(a, c)),
        1 => (any::<usize>(), 0u64..100).prop_map(|(a, c)| Op::AddConst(a, c)),
        1 => (0u64..100).prop_map(Op::Constant),
    ]
}

/// Builds a circuit over `n_inputs` inputs from the recipe; wire indices are
/// taken modulo the number of wires built so far, so every recipe yields a
/// valid DAG (wires only ever reference earlier gates).
fn build(n_inputs: usize, ops: &[Op]) -> Circuit {
    let mut c = Circuit::new(n_inputs);
    let mut wires: Vec<_> = (0..n_inputs).map(|i| c.input(i)).collect();
    for op in ops {
        let pick = |i: &usize| wires[i % wires.len()];
        let w = match op {
            Op::Add(a, b) => c.add(pick(a), pick(b)),
            Op::Sub(a, b) => c.sub(pick(a), pick(b)),
            Op::Mul(a, b) => c.mul(pick(a), pick(b)),
            Op::MulConst(a, k) => c.mul_const(pick(a), Fp::from_u64(*k)),
            Op::AddConst(a, k) => c.add_const(pick(a), Fp::from_u64(*k)),
            Op::Constant(k) => c.constant(Fp::from_u64(*k)),
        };
        wires.push(w);
    }
    c.set_output(*wires.last().expect("at least the inputs exist"));
    c
}

/// The layering invariants: layers partition the `Mul` gates, every layer is
/// non-empty and ascending, the count matches `mult_depth`, and each gate's
/// inputs depend only on strictly earlier multiplication layers.
fn assert_layering_invariants(c: &Circuit) {
    let layers = c.layers();
    assert_eq!(layers.len(), c.mult_depth(), "depth = number of layers");
    let total: usize = layers.iter().map(Vec::len).sum();
    assert_eq!(total, c.mult_count(), "layers partition the Mul gates");
    let (_, per_gate) = c.mult_layers();
    let mut seen = std::collections::HashSet::new();
    for (l, gates) in layers.iter().enumerate() {
        assert!(!gates.is_empty(), "no empty layers");
        assert!(gates.windows(2).all(|w| w[0] < w[1]), "ascending gate ids");
        for &g in gates {
            assert!(seen.insert(g), "no gate in two layers");
            let Gate::Mul(a, b) = c.gates()[g] else {
                panic!("layer member {g} is not a Mul gate");
            };
            assert_eq!(per_gate[g], l + 1, "layer index matches mult_layers");
            assert!(
                per_gate[a.index()] <= l && per_gate[b.index()] <= l,
                "inputs of a layer-{} gate must not depend on layer {} or later",
                l + 1,
                l + 1
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Layering invariants over random wide/deep DAG circuits.
    #[test]
    fn prop_layers_respect_dependencies(
        n_inputs in 2usize..6,
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let c = build(n_inputs, &ops);
        assert_layering_invariants(&c);
    }
}

proptest! {
    // Full simulated MPC runs are comparatively expensive; a handful of
    // random circuits exercises the layer-batched evaluation end to end.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Layer-batched evaluation == cleartext evaluation == per-gate
    /// reference path, on real simulated runs over random circuits.
    #[test]
    fn prop_layer_batched_evaluation_matches_reference(
        ops in proptest::collection::vec(op_strategy(), 1..14),
        seed in 1u64..1000,
    ) {
        let n = 4;
        let c = build(n, &ops);
        if c.mult_count() > 8 {
            return; // skip: keep the preprocessing phase affordable
        }
        let inputs = [3u64, 5, 7, 11];
        let clear = c.evaluate_clear(&inputs.map(Fp::from_u64));
        let run = |per_gate: bool| {
            MpcBuilder::new(n, 1, 0)
                .network(NetworkKind::Synchronous)
                .seed(seed)
                .inputs(&inputs)
                .per_gate_openings(per_gate)
                .run(&c)
                .expect("synchronous all-honest run must complete")
        };
        let layered = run(false);
        prop_assert_eq!(layered.output, clear, "layer-batched == cleartext");
        let per_gate = run(true);
        prop_assert_eq!(layered.output, per_gate.output, "layer-batched == per-gate");
        // Both engines must agree the run was clean.
        prop_assert_eq!(layered.metrics.decode_failures, 0);
        prop_assert_eq!(per_gate.metrics.decode_failures, 0);
    }
}

/// Deterministic wide + deep shapes (the extremes the proptest recipes only
/// sample): one opening per layer must still finish and agree with the
/// cleartext result.
#[test]
fn wide_and_deep_layered_circuits_evaluate_correctly() {
    for (width, depth) in [(6usize, 1usize), (1, 6), (3, 3)] {
        let c = Circuit::layered(4, width, depth);
        assert_layering_invariants(&c);
        assert_eq!(c.layers().len(), depth);
        assert!(c.layers().iter().all(|l| l.len() == width));
        let inputs = [2u64, 3, 4, 5];
        let clear = c.evaluate_clear(&inputs.map(Fp::from_u64));
        let r = MpcBuilder::new(4, 1, 0)
            .inputs(&inputs)
            .run(&c)
            .expect("layered circuit run completes");
        assert_eq!(r.output, clear, "width={width} depth={depth}");
    }
}
