//! The canonical codec contract: `decode(encode(m)) == m` for every message
//! in the protocol tree, and the simulator's bit accounting is *exactly* the
//! sum of encoded lengths ×8 — no estimates anywhere.

use bobw_mpc::algebra::Fp;
use bobw_mpc::net::{
    CorruptionSet, NetConfig, Protocol, Simulation, TranscriptEvent, WireDecode, WireEncode,
};
use bobw_mpc::protocols::acast::Acast;
use bobw_mpc::protocols::{AbaMsg, AcastMsg, BcValue, Msg, SbaMsg, Vote};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_fp(rng: &mut StdRng) -> Fp {
    Fp::from_u64(rng.gen())
}

fn arb_fp_vec(rng: &mut StdRng, max_len: usize) -> Vec<Fp> {
    let len = rng.gen_range(0..=max_len);
    (0..len).map(|_| arb_fp(rng)).collect()
}

fn arb_u32_vec(rng: &mut StdRng, max_len: usize) -> Vec<u32> {
    let len = rng.gen_range(0..=max_len);
    (0..len).map(|_| rng.gen_range(0..64u32)).collect()
}

fn arb_vote(rng: &mut StdRng) -> Vote {
    if rng.gen_range(0..2u8) == 0 {
        Vote::Ok
    } else {
        Vote::Nok {
            ell: rng.gen_range(0..32),
            value: arb_fp(rng),
        }
    }
}

fn arb_bc_value(rng: &mut StdRng) -> BcValue {
    match rng.gen_range(0..5u8) {
        0 => BcValue::Bit(rng.gen_range(0..2u8) == 1),
        1 => {
            let len = rng.gen_range(0..6usize);
            BcValue::Votes(
                (0..len)
                    .map(|_| (rng.gen_range(0..32u32), arb_vote(rng)))
                    .collect(),
            )
        }
        2 => BcValue::Wef {
            w: arb_u32_vec(rng, 6),
            e: arb_u32_vec(rng, 4),
            f: arb_u32_vec(rng, 6),
        },
        3 => BcValue::Star {
            e: arb_u32_vec(rng, 4),
            f: arb_u32_vec(rng, 6),
        },
        _ => BcValue::Value(arb_fp_vec(rng, 8)),
    }
}

fn arb_sba_value(rng: &mut StdRng) -> Option<BcValue> {
    if rng.gen_range(0..4u8) == 0 {
        None
    } else {
        Some(arb_bc_value(rng))
    }
}

/// Draws one message, with the top-level variant chosen uniformly so a few
/// hundred cases cover the whole `Msg` tree many times over.
fn arb_msg(rng: &mut StdRng) -> Msg {
    match rng.gen_range(0..9u8) {
        0 => Msg::Acast(AcastMsg::Send(arb_bc_value(rng))),
        1 => Msg::Acast(AcastMsg::Echo(arb_bc_value(rng))),
        2 => Msg::Acast(AcastMsg::Ready(arb_bc_value(rng))),
        3 => match rng.gen_range(0..3u8) {
            0 => Msg::Sba(SbaMsg::Round1 {
                phase: rng.gen_range(0..8),
                value: arb_sba_value(rng),
            }),
            1 => Msg::Sba(SbaMsg::Round2 {
                phase: rng.gen_range(0..8),
                candidate: if rng.gen_range(0..3u8) == 0 {
                    None
                } else {
                    Some(arb_sba_value(rng))
                },
            }),
            _ => Msg::Sba(SbaMsg::King {
                phase: rng.gen_range(0..8),
                value: arb_sba_value(rng),
            }),
        },
        4 => match rng.gen_range(0..3u8) {
            0 => Msg::Aba(AbaMsg::Est {
                round: rng.gen_range(0..16),
                value: rng.gen(),
            }),
            1 => Msg::Aba(AbaMsg::Aux {
                round: rng.gen_range(0..16),
                value: rng.gen(),
            }),
            _ => Msg::Aba(AbaMsg::Finish { value: rng.gen() }),
        },
        5 => {
            let polys = rng.gen_range(0..4usize);
            Msg::RowPolys((0..polys).map(|_| arb_fp_vec(rng, 5)).collect())
        }
        6 => Msg::Points(arb_fp_vec(rng, 8)),
        7 => Msg::Open {
            tag: rng.gen_range(0..1024),
            values: arb_fp_vec(rng, 8),
        },
        _ => Msg::Ready(arb_fp_vec(rng, 4)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]
    #[test]
    fn decode_encode_is_identity_over_the_msg_tree(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let msg = arb_msg(&mut rng);
        let bytes = msg.encode();
        prop_assert_eq!(Msg::decode(&bytes).as_ref(), Ok(&msg));
        // encoded_bits is exactly the wire length the simulator accounts
        prop_assert_eq!(msg.encoded_bits(), bytes.len() as u64 * 8);
    }

    #[test]
    fn decoding_arbitrary_bytes_never_panics(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.gen_range(0..64usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        // any result is fine — the property is "no panic, no unbounded alloc"
        let _ = Msg::decode(&bytes);
        let _ = bobw_mpc::net::Frame::decode::<Msg>(&bytes);
    }
}

// ---------------------------------------------------------------------------
// The TCP stream codec under adversarial byte streams: whatever the kernel
// (or the chaos shim) does to the bytes — arbitrary read-boundary splits,
// truncation mid-record, garbage runs — the incremental decoder must either
// reproduce the sent records exactly or fault cleanly. Never panic, never
// mis-frame: a decode fault is the supervisor's resync-by-teardown signal,
// so a *wrong* record slipping through would silently corrupt a run.
// ---------------------------------------------------------------------------

use bobw_mpc::net::transport::supervisor::{encode_record, LinkRecord, RecordDecoder};

fn arb_record(rng: &mut StdRng, seq: u64) -> LinkRecord {
    match rng.gen_range(0..4u8) {
        0 => LinkRecord::Data {
            seq,
            send_tick: rng.gen_range(0..1000),
            order: rng.gen_range(0..64),
            deliver_tick: rng.gen_range(0..2000),
            framed: rng.gen(),
            payload: (0..rng.gen_range(0..96usize)).map(|_| rng.gen()).collect(),
        },
        1 => LinkRecord::Floor {
            seq,
            floor: rng.gen_range(0..5000),
        },
        2 => LinkRecord::Probe {
            floor: rng.gen_range(0..5000),
        },
        _ => LinkRecord::Ack {
            next_seq: rng.gen(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn record_stream_survives_arbitrary_read_splits(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let records: Vec<LinkRecord> =
            (0..rng.gen_range(1..8u64)).map(|s| arb_record(&mut rng, s)).collect();
        let stream: Vec<u8> = records.iter().flat_map(encode_record).collect();
        // Feed the exact bytes in adversarially-sized chunks (including
        // zero-length reads): the decoded sequence must be identical.
        let mut dec = RecordDecoder::new();
        let mut got = Vec::new();
        let mut pos = 0;
        while pos < stream.len() {
            let k = rng.gen_range(0..=(stream.len() - pos).min(17));
            dec.extend(&stream[pos..pos + k]);
            pos += k;
            while let Some(rec) = dec.next_record().expect("clean stream never faults") {
                got.push(rec);
            }
        }
        prop_assert_eq!(&got, &records);
        prop_assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn truncated_stream_yields_prefix_then_waits(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let records: Vec<LinkRecord> =
            (0..rng.gen_range(1..6u64)).map(|s| arb_record(&mut rng, s)).collect();
        let stream: Vec<u8> = records.iter().flat_map(encode_record).collect();
        let cut = rng.gen_range(0..stream.len());
        let mut dec = RecordDecoder::new();
        dec.extend(&stream[..cut]);
        let mut got = Vec::new();
        while let Some(rec) = dec.next_record().expect("a truncated clean stream never faults") {
            got.push(rec);
        }
        // Only complete records surface; the cut tail is pending, not an
        // error (EOF handling — abandoning those bytes — is the reader's
        // policy decision, not the decoder's).
        prop_assert_eq!(got.as_slice(), &records[..got.len()]);
        // Everything decoded must be a prefix: the decoder never invents or
        // reorders a record around the truncation point.
        prop_assert!(got.len() <= records.len());
    }

    #[test]
    fn corrupted_record_never_misframes(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let seq = rng.gen_range(0..100);
        let record = arb_record(&mut rng, seq);
        let mut bytes = encode_record(&record);
        let victim = rng.gen_range(0..bytes.len());
        let flip: u8 = rng.gen_range(1..=255);
        bytes[victim] ^= flip;
        let mut dec = RecordDecoder::new();
        dec.extend(&bytes);
        // One corrupted byte anywhere in the record: the decoder may fault
        // (checksum/length/tag) or may legitimately wait for more bytes (the
        // corruption grew the length prefix) — but it must never hand back a
        // decoded record, because every framed byte is checksummed.
        if let Ok(Some(rec)) = dec.next_record() {
            prop_assert!(
                false,
                "corrupt byte {victim} (^{flip:#x}) decoded as {rec:?}"
            );
        }
    }

    #[test]
    fn garbage_streams_never_panic(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        // A valid record, then a garbage run, then another valid record —
        // the mid-stream garbage must surface as a clean fault (the
        // supervisor's teardown-and-replay signal), never a panic; and the
        // first record must still come out intact ahead of it.
        let first = arb_record(&mut rng, 0);
        let second = arb_record(&mut rng, 1);
        let mut stream = encode_record(&first);
        let garbage_len = rng.gen_range(1..40usize);
        stream.extend((0..garbage_len).map(|_| rng.gen::<u8>()));
        stream.extend(encode_record(&second));
        let mut dec = RecordDecoder::new();
        let mut pos = 0;
        let mut decoded = Vec::new();
        let mut faulted = false;
        while pos < stream.len() && !faulted {
            let k = rng.gen_range(1..=(stream.len() - pos).min(23));
            dec.extend(&stream[pos..pos + k]);
            pos += k;
            loop {
                match dec.next_record() {
                    Ok(Some(rec)) => decoded.push(rec),
                    Ok(None) => break,
                    Err(_) => {
                        faulted = true;
                        break;
                    }
                }
            }
        }
        prop_assert!(!decoded.is_empty(), "the clean first record must decode");
        prop_assert_eq!(&decoded[0], &first);
        // Whatever was decoded beyond the first record, it can only be a
        // record we actually sent — garbage must never alias into a fresh,
        // never-sent record.
        for rec in &decoded {
            prop_assert!(rec == &first || rec == &second, "invented record {rec:?}");
        }
    }
}

/// The whole point of the wire layer: `Metrics::honest_bits` is the exact sum
/// of the canonical encoded lengths (×8) of every message honest parties put
/// on a channel, with broadcasts counted once per recipient.
#[test]
fn honest_bits_equals_sum_of_encoded_lengths() {
    let n = 5;
    let t = 1;
    let payload = BcValue::Value(vec![Fp::from_u64(7); 3]);
    let parties: Vec<Box<dyn Protocol<Msg>>> = (0..n)
        .map(|i| {
            let a = if i == 0 {
                Acast::new_sender(0, n, t, payload.clone())
            } else {
                Acast::new(0, n, t)
            };
            Box::new(a) as Box<dyn Protocol<Msg>>
        })
        .collect();
    let mut sim = Simulation::new(NetConfig::synchronous(n), CorruptionSet::none(), parties);
    sim.record_transcript();
    sim.run_to_quiescence(10_000);
    assert!((0..n).all(|i| sim.party_as::<Acast>(i).unwrap().output.is_some()));

    // In a fault-free Bracha A-cast every party broadcasts exactly one Echo
    // and one Ready, and the sender additionally broadcasts one Send; each
    // broadcast costs n wire messages.
    let bits = |m: &Msg| m.encoded_bits();
    let send = bits(&Msg::Acast(AcastMsg::Send(payload.clone())));
    let echo = bits(&Msg::Acast(AcastMsg::Echo(payload.clone())));
    let ready = bits(&Msg::Acast(AcastMsg::Ready(payload.clone())));
    let n = n as u64;
    let expected = n * send + n * n * echo + n * n * ready;
    assert_eq!(sim.metrics().honest_bits, expected);
    assert_eq!(sim.metrics().honest_messages, n + 2 * n * n);

    // The transcript agrees delivery-by-delivery: at quiescence every sent
    // message was delivered, so the per-delivery bit sizes add up to the
    // same exact total.
    let delivered: u64 = sim
        .transcript()
        .iter()
        .filter_map(|e| match &e.event {
            TranscriptEvent::Deliver { bits, .. } => Some(*bits),
            TranscriptEvent::DroppedDeliver { .. } | TranscriptEvent::Timer { .. } => None,
        })
        .sum();
    assert_eq!(delivered, expected);
}
