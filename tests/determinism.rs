//! Simulation determinism: a run is a pure function of
//! `(NetConfig, CorruptionSet, parties, scheduler)`. Same seed and same
//! scheduler must reproduce the exact event transcript and metrics, in both
//! network kinds; different seeds must actually produce different executions.
//!
//! Since the deterministic parallel engine (PR 4), the same holds across
//! worker-thread counts: a `threads = k` run must be bit-identical — same
//! transcript hash, same `Metrics`, same honest-bit totals — to the
//! `threads = 1` run for every seed, network kind and Byzantine strategy.

use bobw_mpc::algebra::Fp;
use bobw_mpc::core::{Circuit, MpcBuilder};
use bobw_mpc::net::{
    Backend, ByzantineStrategy, CorruptionSet, Crash, EquivocateBroadcast, FaultPlan, GarbleBytes,
    Metrics, NetConfig, NetworkKind, Passive, Protocol, Simulation, Time, TranscriptEntry,
    TranscriptEvent, UniformDelay, WireEncode,
};
use bobw_mpc::protocols::bc::Bc;
use bobw_mpc::protocols::{BcValue, Msg, Params};
use proptest::prelude::*;

fn bc_parties(n: usize, params: Params) -> Vec<Box<dyn Protocol<Msg>>> {
    let payload = BcValue::Value(vec![Fp::from_u64(42), Fp::from_u64(7)]);
    (0..n)
        .map(|i| {
            let bc = if i == 0 {
                Bc::new_sender(0, params.ts, params, payload.clone())
            } else {
                Bc::new(0, params.ts, params)
            };
            Box::new(bc) as Box<dyn Protocol<Msg>>
        })
        .collect()
}

/// Runs one `Π_BC` broadcast with transcript recording and returns the full
/// execution fingerprint (ambient `MPC_FRAMES` setting).
fn run_bc(
    kind: NetworkKind,
    seed: u64,
    explicit_scheduler: bool,
) -> (Vec<TranscriptEntry>, Metrics, Time) {
    run_bc_threads(kind, seed, explicit_scheduler, 1)
}

/// [`run_bc`] with an explicit simulator worker-thread count.
fn run_bc_threads(
    kind: NetworkKind,
    seed: u64,
    explicit_scheduler: bool,
    threads: usize,
) -> (Vec<TranscriptEntry>, Metrics, Time) {
    run_bc_config(
        NetConfig::for_kind(4, kind)
            .with_seed(seed)
            .with_threads(threads),
        explicit_scheduler,
    )
}

/// [`run_bc`] with a fully explicit [`NetConfig`] (golden tests pin
/// `with_frames` so their fingerprints are environment-independent).
fn run_bc_config(
    cfg: NetConfig,
    explicit_scheduler: bool,
) -> (Vec<TranscriptEntry>, Metrics, Time) {
    let n = cfg.n;
    let params = Params::max_thresholds(n, 10);
    let mut sim = if explicit_scheduler {
        Simulation::with_scheduler(
            cfg,
            CorruptionSet::none(),
            Box::new(UniformDelay { min: 1, max: 35 }),
            bc_parties(n, params),
        )
    } else {
        Simulation::new(cfg, CorruptionSet::none(), bc_parties(n, params))
    };
    sim.record_transcript();
    let done = sim.run_until(params.t_bc() * 20, |s| {
        (0..n).all(|i| s.party_as::<Bc>(i).unwrap().value().is_some())
    });
    assert!(done, "broadcast must complete within the horizon");
    (sim.transcript().to_vec(), sim.metrics().clone(), sim.now())
}

#[test]
fn same_seed_same_scheduler_identical_transcript_sync() {
    let a = run_bc(NetworkKind::Synchronous, 11, false);
    let b = run_bc(NetworkKind::Synchronous, 11, false);
    assert_eq!(a.0, b.0, "transcripts must be identical");
    assert_eq!(a.1, b.1, "metrics must be identical");
    assert_eq!(a.2, b.2, "completion times must be identical");
    assert!(!a.0.is_empty(), "transcript recording must capture events");
}

#[test]
fn same_seed_same_scheduler_identical_transcript_async() {
    let a = run_bc(NetworkKind::Asynchronous, 11, false);
    let b = run_bc(NetworkKind::Asynchronous, 11, false);
    assert_eq!(a.0, b.0, "transcripts must be identical");
    assert_eq!(a.1, b.1, "metrics must be identical");
    assert_eq!(a.2, b.2, "completion times must be identical");
}

#[test]
fn same_seed_explicit_scheduler_identical_transcript() {
    // With an explicit scheduler the network kind is fully determined by the
    // scheduler itself (`NetConfig::kind` only selects the *default* one), so
    // a single run covers this path; the two default-scheduler tests above
    // cover both kinds.
    let a = run_bc(NetworkKind::Asynchronous, 23, true);
    let b = run_bc(NetworkKind::Asynchronous, 23, true);
    assert_eq!(a.0, b.0, "transcripts must be identical");
    assert_eq!(a.1, b.1, "metrics must be identical");
}

#[test]
fn different_seeds_diverge_async() {
    // Sanity check that the transcript fingerprint actually discriminates:
    // under the randomized asynchronous scheduler, a different seed must
    // yield a different delivery schedule.
    let a = run_bc(NetworkKind::Asynchronous, 1, false);
    let b = run_bc(NetworkKind::Asynchronous, 2, false);
    assert_ne!(
        a.0, b.0,
        "different seeds should produce different transcripts"
    );
}

// ---------------------------------------------------------------------------
// Golden regression: the algebra fast paths (shared evaluation-domain cache,
// O(n²) interpolation, batched inversion, incremental OEC) and the
// allocation-lean simulator dispatch are *pure* performance work — the
// executions they produce must be bit-identical to the pre-refactor
// implementation. The constants below were captured from the seed (textbook
// asymptotics) implementation; any drift in transcripts, Metrics or outputs
// fails this test.
// ---------------------------------------------------------------------------

fn fnv(h: &mut u64, v: u64) {
    *h ^= v;
    *h = h.wrapping_mul(0x100_0000_01b3);
}

/// Order-sensitive FNV-1a-style fingerprint of a full transcript.
fn transcript_hash(entries: &[TranscriptEntry]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for e in entries {
        fnv(&mut h, e.at);
        fnv(&mut h, e.party as u64);
        match &e.event {
            TranscriptEvent::Deliver { from, path, bits } => {
                fnv(&mut h, 1);
                fnv(&mut h, *from as u64);
                for &s in path.iter() {
                    fnv(&mut h, s as u64);
                }
                fnv(&mut h, *bits);
            }
            TranscriptEvent::DroppedDeliver { from, path, bits } => {
                fnv(&mut h, 2);
                fnv(&mut h, *from as u64);
                for &s in path.iter() {
                    fnv(&mut h, s as u64);
                }
                fnv(&mut h, *bits);
            }
            TranscriptEvent::Timer { path, id } => {
                fnv(&mut h, 3);
                for &s in path.iter() {
                    fnv(&mut h, s as u64);
                }
                fnv(&mut h, *id);
            }
        }
    }
    h
}

#[test]
fn bc_transcript_and_metrics_bit_identical_to_pre_refactor_golden() {
    // (kind, transcript_len, transcript_hash, honest_bits, honest_messages,
    //  events_processed, completion_time) captured from the pre-optimisation
    // seed implementation at seed 11, n = 4, with frame coalescing pinned
    // *off* — this is the regression anchor for the unbatched wire path
    // (also exercised suite-wide by the `MPC_FRAMES=0` CI run). The parallel
    // engine must reproduce the same fingerprint for every worker-thread
    // count.
    let golden = [
        (
            NetworkKind::Synchronous,
            144usize,
            0x93ae_d9d7_6483_3b43u64,
            23008u64,
            108u64,
            144u64,
            90u64,
        ),
        (
            NetworkKind::Asynchronous,
            138,
            0xa4dd_919e_8c8a_0d18,
            10656,
            108,
            138,
            316,
        ),
    ];
    for (kind, t_len, t_hash, bits, msgs, events, now) in golden {
        for threads in [1usize, 4] {
            let cfg = NetConfig::for_kind(4, kind)
                .with_seed(11)
                .with_threads(threads)
                .with_frames(false);
            let (transcript, metrics, finished) = run_bc_config(cfg, false);
            let label = format!("{kind:?} threads={threads}");
            assert_eq!(transcript.len(), t_len, "{label} transcript length");
            assert_eq!(transcript_hash(&transcript), t_hash, "{label} transcript");
            assert_eq!(metrics.honest_bits, bits, "{label} honest_bits");
            assert_eq!(metrics.honest_messages, msgs, "{label} honest_messages");
            assert_eq!(metrics.events_processed, events, "{label} events");
            assert_eq!(metrics.frames_sent, 0, "{label} frames off");
            assert_eq!(finished, now, "{label} completion time");
        }
    }
}

/// Golden fingerprint of the *framed* wire engine: same `Π_BC` run as the
/// pre-refactor golden above, with frame coalescing pinned on. The framed
/// engine delivers the same messages (same transcript length, same honest
/// bits and message counts — per-message accounting is frame-invariant) in a
/// party-batched order over fewer simulator events.
#[test]
fn bc_transcript_and_metrics_golden_framed() {
    let golden = [
        (
            NetworkKind::Synchronous,
            144usize,
            0xa3ad_658f_642a_92c3u64,
            23008u64,
            108u64,
            144u64,
            81u64,
            90u64,
        ),
        (
            NetworkKind::Asynchronous,
            138,
            0xcd2e_9356_0a03_b960,
            10656,
            108,
            138,
            81,
            316,
        ),
    ];
    for (kind, t_len, t_hash, bits, msgs, events, frames, now) in golden {
        for threads in [1usize, 4] {
            let cfg = NetConfig::for_kind(4, kind)
                .with_seed(11)
                .with_threads(threads)
                .with_frames(true);
            let (transcript, metrics, finished) = run_bc_config(cfg, false);
            let label = format!("framed {kind:?} threads={threads}");
            assert_eq!(transcript.len(), t_len, "{label} transcript length");
            assert_eq!(transcript_hash(&transcript), t_hash, "{label} transcript");
            assert_eq!(metrics.honest_bits, bits, "{label} honest_bits");
            assert_eq!(metrics.honest_messages, msgs, "{label} honest_messages");
            assert_eq!(metrics.events_processed, events, "{label} events");
            assert_eq!(metrics.frames_sent, frames, "{label} frames_sent");
            assert_eq!(finished, now, "{label} completion time");
        }
    }
}

/// The golden full-MPC circuit of the PR 4 baseline.
fn golden_circuit() -> Circuit {
    let mut c = Circuit::new(4);
    let prod = c.mul(c.input(0), c.input(1));
    let s = c.add(c.input(2), c.input(3));
    let out = c.add(prod, s);
    c.set_output(out);
    c
}

#[test]
fn full_mpc_metrics_bit_identical_to_pre_refactor_golden() {
    // (kind, output, finished_at, honest_bits, honest_messages, events)
    // captured from the pre-optimisation seed implementation at seed 77,
    // reproduced here with both batching layers pinned to their reference
    // paths (frames off, per-gate openings).
    //
    // One deliberate, documented exception: the synchronous run's event
    // count is 62_808 instead of the seed's 62_805. The slice engine
    // evaluates the stop predicate at *time-slice boundaries* (DESIGN.md,
    // "Deterministic parallel execution"), and at the stop tick T = 960 the
    // seed engine left 3 already-dispatched same-tick events unprocessed.
    // Draining the full tick processes them; they emit nothing, so every
    // observable of the run — output, completion time, honest bits and
    // messages — is still bit-identical to the seed implementation.
    let golden = [
        (
            NetworkKind::Synchronous,
            33u64,
            960u64,
            8_775_040u64,
            47_856u64,
            62_808u64,
        ),
        (
            NetworkKind::Asynchronous,
            33,
            3001,
            5_721_504,
            69_412,
            84_360,
        ),
    ];
    let c = golden_circuit();
    for (kind, output, finished_at, bits, msgs, events) in golden {
        for threads in [1usize, 4] {
            let r = MpcBuilder::new(4, 1, 0)
                .network(kind)
                .seed(77)
                .inputs(&[3, 5, 7, 11])
                .threads(threads)
                .frames(false)
                .per_gate_openings(true)
                // Golden fingerprints pin the scalar engine explicitly: a
                // CI lane exports MPC_PACKING, and the packed engine is a
                // different (equally correct) protocol with its own wire
                // transcript.
                .packing(0)
                // The golden pins the simulator's exact completion tick and
                // event count, so the backend is explicit: under
                // MPC_TRANSPORT=threaded the run would stop at a different
                // (equally correct) quiescence tick.
                .transport(Backend::Simulator)
                // Same story for the MPC_FAULT_PLAN CI lane: an injected
                // plan changes the transcript by design.
                .fault_plan(FaultPlan::none())
                .run(&c)
                .expect("run completes");
            let label = format!("{kind:?} threads={threads}");
            assert_eq!(r.output.as_u64(), output, "{label} output");
            assert_eq!(r.finished_at, finished_at, "{label} finished_at");
            assert_eq!(r.metrics.honest_bits, bits, "{label} honest_bits");
            assert_eq!(r.metrics.honest_messages, msgs, "{label} honest_messages");
            assert_eq!(r.metrics.events_processed, events, "{label} events");
            assert_eq!(r.metrics.frames_sent, 0, "{label} frames off");
        }
    }
}

/// Golden fingerprint of the default engine (frames on, layer-batched
/// openings) on the same full-MPC run: the same output at the same simulated
/// time, with the synchronous event count reduced 62 808 → 27 822 (2.26×)
/// and identical paper-level bit accounting.
#[test]
fn full_mpc_metrics_golden_batched() {
    let golden = [
        (
            NetworkKind::Synchronous,
            33u64,
            960u64,
            8_775_040u64,
            47_856u64,
            27_822u64,
            906u64,
        ),
        (
            NetworkKind::Asynchronous,
            33,
            2956,
            5_703_232,
            68_952,
            37_351,
            5_163,
        ),
    ];
    let c = golden_circuit();
    for (kind, output, finished_at, bits, msgs, events, frames) in golden {
        for threads in [1usize, 4] {
            let r = MpcBuilder::new(4, 1, 0)
                .network(kind)
                .seed(77)
                .inputs(&[3, 5, 7, 11])
                .threads(threads)
                .frames(true)
                // Scalar engine, simulator and fault-free schedule pinned —
                // see the golden above.
                .packing(0)
                .transport(Backend::Simulator)
                .fault_plan(FaultPlan::none())
                .run(&c)
                .expect("run completes");
            let label = format!("batched {kind:?} threads={threads}");
            assert_eq!(r.output.as_u64(), output, "{label} output");
            assert_eq!(r.finished_at, finished_at, "{label} finished_at");
            assert_eq!(r.metrics.honest_bits, bits, "{label} honest_bits");
            assert_eq!(r.metrics.honest_messages, msgs, "{label} honest_messages");
            assert_eq!(r.metrics.events_processed, events, "{label} events");
            assert_eq!(r.metrics.frames_sent, frames, "{label} frames_sent");
            assert_eq!(r.metrics.decode_failures, 0, "{label} decode_failures");
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic parallelism: a `threads = k` run must be bit-identical to the
// `threads = 1` run — same transcript (hash and length), same `Metrics`
// (including honest-bit totals), same completion time — for both network
// kinds, every wire-level Byzantine strategy, and arbitrary seeds.
// ---------------------------------------------------------------------------

type StrategyFactory = Box<dyn Fn() -> Box<dyn ByzantineStrategy>>;

fn strategies() -> Vec<(&'static str, StrategyFactory)> {
    use bobw_mpc::protocols::AcastMsg;
    let alt = Msg::Acast(AcastMsg::Send(BcValue::Bit(true))).encode();
    vec![
        ("passive", Box::new(|| Box::new(Passive) as _)),
        ("crash", Box::new(|| Box::new(Crash) as _)),
        (
            "equivocate",
            Box::new(move || Box::new(EquivocateBroadcast { alt: alt.clone() }) as _),
        ),
        ("garble", Box::new(|| Box::new(GarbleBytes) as _)),
    ]
}

/// One Π_BC run with a corrupt sender driving the given wire-level strategy,
/// run to quiescence (a stop predicate would never fire under `Crash`).
fn run_bc_adversarial(
    kind: NetworkKind,
    seed: u64,
    strategy: Box<dyn ByzantineStrategy>,
    threads: usize,
) -> (u64, usize, Metrics, Time) {
    let n = 4;
    let params = Params::max_thresholds(n, 10);
    let cfg = NetConfig::for_kind(n, kind)
        .with_seed(seed)
        .with_threads(threads);
    // Corrupt the Π_BC sender: its broadcast is exactly what equivocation
    // and garbling act on, and crash silences the whole instance.
    let mut sim = Simulation::new(cfg, CorruptionSet::new(vec![0]), bc_parties(n, params));
    sim.set_strategy(strategy);
    sim.record_transcript();
    sim.run_to_quiescence(params.t_bc() * 20);
    (
        transcript_hash(sim.transcript()),
        sim.transcript().len(),
        sim.metrics().clone(),
        sim.now(),
    )
}

#[test]
fn parallel_bit_identical_for_every_kind_and_strategy() {
    for kind in [NetworkKind::Synchronous, NetworkKind::Asynchronous] {
        for (name, mk_strategy) in strategies() {
            let sequential = run_bc_adversarial(kind, 23, mk_strategy(), 1);
            for threads in [2usize, 4] {
                let parallel = run_bc_adversarial(kind, 23, mk_strategy(), threads);
                assert_eq!(
                    sequential, parallel,
                    "{kind:?}/{name}: threads={threads} must be bit-identical to threads=1"
                );
            }
        }
    }
}

#[test]
fn parallel_full_mpc_bit_identical_with_byzantine_wire() {
    // End-to-end: full circuit evaluation with a garbling corrupt party —
    // the decode-failure path, adversary RNG draws and tamper accounting
    // must all interleave identically under parallel pre-execution.
    let c = Circuit::product_of_inputs(4);
    let run = |threads: usize| {
        let r = MpcBuilder::new(4, 1, 0)
            .seed(41)
            .inputs(&[2, 3, 4, 5])
            .corrupt(&[3])
            .byzantine_strategy(Box::new(GarbleBytes))
            .threads(threads)
            .run(&c)
            .expect("honest parties terminate despite garbled bytes");
        (
            r.output,
            r.outputs,
            r.input_subset,
            r.finished_at,
            r.metrics,
        )
    };
    let sequential = run(1);
    assert!(sequential.4.decode_failures > 0, "garbling must bite");
    assert_eq!(sequential, run(4));
}

/// The communication-batching acceptance sweep: for every wire-level
/// Byzantine strategy × network kind, the default batched engine (frames on,
/// layer openings) and the two mixed variants must terminate with exactly
/// the output of the unbatched reference engine, at every thread count —
/// and a strategy that never tampers with bytes must keep
/// `decode_failures == 0` in every configuration.
#[test]
fn batching_preserves_outputs_for_all_strategies() {
    let c = Circuit::product_of_inputs(4);
    for kind in [NetworkKind::Synchronous, NetworkKind::Asynchronous] {
        for (name, mk_strategy) in strategies() {
            let run = |frames: bool, per_gate: bool, threads: usize| {
                MpcBuilder::new(4, 1, 0)
                    .network(kind)
                    .seed(41)
                    .inputs(&[2, 3, 4, 5])
                    .corrupt(&[3])
                    .byzantine_strategy(mk_strategy())
                    .threads(threads)
                    .frames(frames)
                    .per_gate_openings(per_gate)
                    .run(&c)
            };
            let base = match run(false, true, 1) {
                Ok(base) => base,
                Err(e) => {
                    // n = 4 ⇒ t_a = 0: any actively misbehaving corrupt party
                    // exceeds the asynchronous corruption budget, so
                    // termination is not guaranteed there for *any* engine —
                    // the paper's bound, not a batching property. Synchronous
                    // runs must always terminate.
                    assert_eq!(
                        kind,
                        NetworkKind::Asynchronous,
                        "{kind:?}/{name}: reference engine must terminate: {e}"
                    );
                    continue;
                }
            };
            let tampering = matches!(name, "garble");
            assert_eq!(
                base.metrics.decode_failures == 0,
                !tampering,
                "{kind:?}/{name}: baseline decode-failure invariant"
            );
            for (frames, per_gate) in [(true, false), (true, true), (false, false)] {
                for threads in [1usize, 4] {
                    let label =
                        format!("{kind:?}/{name} frames={frames} per_gate={per_gate} t={threads}");
                    let r = run(frames, per_gate, threads)
                        .unwrap_or_else(|e| panic!("{label}: run failed: {e}"));
                    assert_eq!(r.output, base.output, "{label}: output");
                    assert_eq!(r.outputs, base.outputs, "{label}: per-party outputs");
                    assert_eq!(
                        r.metrics.decode_failures == 0,
                        base.metrics.decode_failures == 0,
                        "{label}: decode-failure invariant"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Transcript-level parallel determinism over random seeds and thread
    /// counts, in both network kinds.
    #[test]
    fn parallel_bit_identical_over_random_seeds(
        seed in any::<u64>(),
        threads in 2usize..6,
        sync in any::<bool>(),
    ) {
        let kind = if sync {
            NetworkKind::Synchronous
        } else {
            NetworkKind::Asynchronous
        };
        let sequential = run_bc_threads(kind, seed, false, 1);
        let parallel = run_bc_threads(kind, seed, false, threads);
        prop_assert_eq!(
            transcript_hash(&sequential.0),
            transcript_hash(&parallel.0),
            "transcript hash must match for seed {} threads {}", seed, threads
        );
        prop_assert_eq!(sequential.0.len(), parallel.0.len());
        prop_assert_eq!(sequential.1, parallel.1, "metrics must match");
        prop_assert_eq!(sequential.2, parallel.2, "completion time must match");
    }
}

#[test]
fn full_mpc_run_is_deterministic_both_kinds() {
    let mut c = Circuit::new(4);
    let prod = c.mul(c.input(0), c.input(1));
    let s = c.add(c.input(2), c.input(3));
    let out = c.add(prod, s);
    c.set_output(out);

    for kind in [NetworkKind::Synchronous, NetworkKind::Asynchronous] {
        let run = || {
            MpcBuilder::new(4, 1, 0)
                .network(kind)
                .seed(77)
                .inputs(&[3, 5, 7, 11])
                .run(&c)
                .expect("run completes")
        };
        let a = run();
        let b = run();
        assert_eq!(a.output, b.output, "{kind:?}");
        assert_eq!(a.outputs, b.outputs, "{kind:?}");
        assert_eq!(a.input_subset, b.input_subset, "{kind:?}");
        assert_eq!(a.finished_at, b.finished_at, "{kind:?}");
        assert_eq!(a.metrics, b.metrics, "{kind:?}");
    }
}
