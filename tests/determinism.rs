//! Simulation determinism: a run is a pure function of
//! `(NetConfig, CorruptionSet, parties, scheduler)`. Same seed and same
//! scheduler must reproduce the exact event transcript and metrics, in both
//! network kinds; different seeds must actually produce different executions.

use bobw_mpc::algebra::Fp;
use bobw_mpc::core::{Circuit, MpcBuilder};
use bobw_mpc::net::{
    CorruptionSet, Metrics, NetConfig, NetworkKind, Protocol, Simulation, Time, TranscriptEntry,
    UniformDelay,
};
use bobw_mpc::protocols::bc::Bc;
use bobw_mpc::protocols::{BcValue, Msg, Params};

fn bc_parties(n: usize, params: Params) -> Vec<Box<dyn Protocol<Msg>>> {
    let payload = BcValue::Value(vec![Fp::from_u64(42), Fp::from_u64(7)]);
    (0..n)
        .map(|i| {
            let bc = if i == 0 {
                Bc::new_sender(0, params.ts, params, payload.clone())
            } else {
                Bc::new(0, params.ts, params)
            };
            Box::new(bc) as Box<dyn Protocol<Msg>>
        })
        .collect()
}

/// Runs one `Π_BC` broadcast with transcript recording and returns the full
/// execution fingerprint.
fn run_bc(
    kind: NetworkKind,
    seed: u64,
    explicit_scheduler: bool,
) -> (Vec<TranscriptEntry>, Metrics, Time) {
    let n = 4;
    let params = Params::max_thresholds(n, 10);
    let cfg = NetConfig::for_kind(n, kind).with_seed(seed);
    let mut sim = if explicit_scheduler {
        Simulation::with_scheduler(
            cfg,
            CorruptionSet::none(),
            Box::new(UniformDelay { min: 1, max: 35 }),
            bc_parties(n, params),
        )
    } else {
        Simulation::new(cfg, CorruptionSet::none(), bc_parties(n, params))
    };
    sim.record_transcript();
    let done = sim.run_until(params.t_bc() * 20, |s| {
        (0..n).all(|i| s.party_as::<Bc>(i).unwrap().value().is_some())
    });
    assert!(done, "broadcast must complete within the horizon");
    (sim.transcript().to_vec(), sim.metrics().clone(), sim.now())
}

#[test]
fn same_seed_same_scheduler_identical_transcript_sync() {
    let a = run_bc(NetworkKind::Synchronous, 11, false);
    let b = run_bc(NetworkKind::Synchronous, 11, false);
    assert_eq!(a.0, b.0, "transcripts must be identical");
    assert_eq!(a.1, b.1, "metrics must be identical");
    assert_eq!(a.2, b.2, "completion times must be identical");
    assert!(!a.0.is_empty(), "transcript recording must capture events");
}

#[test]
fn same_seed_same_scheduler_identical_transcript_async() {
    let a = run_bc(NetworkKind::Asynchronous, 11, false);
    let b = run_bc(NetworkKind::Asynchronous, 11, false);
    assert_eq!(a.0, b.0, "transcripts must be identical");
    assert_eq!(a.1, b.1, "metrics must be identical");
    assert_eq!(a.2, b.2, "completion times must be identical");
}

#[test]
fn same_seed_explicit_scheduler_identical_transcript() {
    // With an explicit scheduler the network kind is fully determined by the
    // scheduler itself (`NetConfig::kind` only selects the *default* one), so
    // a single run covers this path; the two default-scheduler tests above
    // cover both kinds.
    let a = run_bc(NetworkKind::Asynchronous, 23, true);
    let b = run_bc(NetworkKind::Asynchronous, 23, true);
    assert_eq!(a.0, b.0, "transcripts must be identical");
    assert_eq!(a.1, b.1, "metrics must be identical");
}

#[test]
fn different_seeds_diverge_async() {
    // Sanity check that the transcript fingerprint actually discriminates:
    // under the randomized asynchronous scheduler, a different seed must
    // yield a different delivery schedule.
    let a = run_bc(NetworkKind::Asynchronous, 1, false);
    let b = run_bc(NetworkKind::Asynchronous, 2, false);
    assert_ne!(
        a.0, b.0,
        "different seeds should produce different transcripts"
    );
}

#[test]
fn full_mpc_run_is_deterministic_both_kinds() {
    let mut c = Circuit::new(4);
    let prod = c.mul(c.input(0), c.input(1));
    let s = c.add(c.input(2), c.input(3));
    let out = c.add(prod, s);
    c.set_output(out);

    for kind in [NetworkKind::Synchronous, NetworkKind::Asynchronous] {
        let run = || {
            MpcBuilder::new(4, 1, 0)
                .network(kind)
                .seed(77)
                .inputs(&[3, 5, 7, 11])
                .run(&c)
                .expect("run completes")
        };
        let a = run();
        let b = run();
        assert_eq!(a.output, b.output, "{kind:?}");
        assert_eq!(a.outputs, b.outputs, "{kind:?}");
        assert_eq!(a.input_subset, b.input_subset, "{kind:?}");
        assert_eq!(a.finished_at, b.finished_at, "{kind:?}");
        assert_eq!(a.metrics, b.metrics, "{kind:?}");
    }
}
