//! Cross-crate integration tests: full `Π_CirEval` runs through the public
//! facade, compared against cleartext evaluation, in both network models.

use bobw_mpc::algebra::Fp;
use bobw_mpc::core::{Circuit, MpcBuilder};
use bobw_mpc::net::NetworkKind;

fn inner_product(n: usize, weights: &[u64]) -> Circuit {
    let mut c = Circuit::new(n);
    let mut acc = c.constant(Fp::ZERO);
    for (i, &w) in weights.iter().enumerate().take(n) {
        let scaled = c.mul_const(c.input(i), Fp::from_u64(w));
        acc = c.add(acc, scaled);
    }
    c.set_output(acc);
    c
}

#[test]
fn weighted_sum_matches_cleartext_in_both_networks() {
    let n = 4;
    let weights = [2u64, 3, 5, 7];
    let inputs = [10u64, 20, 30, 40];
    let circuit = inner_product(n, &weights);
    let expected: u64 = weights.iter().zip(&inputs).map(|(w, x)| w * x).sum();
    for kind in [NetworkKind::Synchronous, NetworkKind::Asynchronous] {
        let result = MpcBuilder::new(n, 1, 0)
            .network(kind)
            .seed(100)
            .inputs(&inputs)
            .run(&circuit)
            .expect("run completes");
        assert_eq!(result.output.as_u64(), expected, "{kind:?}");
        assert_eq!(result.input_subset.len(), n);
    }
}

#[test]
fn deep_multiplication_circuit_sync() {
    let n = 4;
    let circuit = Circuit::layered(n, 2, 3);
    let inputs = [2u64, 3, 4, 5];
    let expected = circuit.evaluate_clear(&inputs.map(Fp::from_u64));
    let result = MpcBuilder::new(n, 1, 0)
        .network(NetworkKind::Synchronous)
        .inputs(&inputs)
        .run(&circuit)
        .expect("run completes");
    assert_eq!(result.output, expected);
}

#[test]
fn product_circuit_with_five_parties() {
    let n = 5;
    let circuit = Circuit::product_of_inputs(n);
    let inputs = [2u64, 3, 4, 5, 6];
    let result = MpcBuilder::new(n, 1, 0)
        .network(NetworkKind::Synchronous)
        .inputs(&inputs)
        .run(&circuit)
        .expect("run completes");
    assert_eq!(result.output.as_u64(), 2 * 3 * 4 * 5 * 6);
}

#[test]
fn outputs_are_deterministic_per_seed_and_differ_across_networks_in_timing_only() {
    let n = 4;
    let circuit = Circuit::product_of_inputs(n);
    let inputs = [3u64, 3, 3, 3];
    let run = |kind, seed| {
        MpcBuilder::new(n, 1, 0)
            .network(kind)
            .seed(seed)
            .inputs(&inputs)
            .run(&circuit)
            .expect("run completes")
    };
    let a = run(NetworkKind::Synchronous, 5);
    let b = run(NetworkKind::Synchronous, 5);
    assert_eq!(
        a.finished_at, b.finished_at,
        "same seed → identical execution"
    );
    assert_eq!(a.metrics.honest_bits, b.metrics.honest_bits);
    let c = run(NetworkKind::Asynchronous, 5);
    assert_eq!(
        a.output, c.output,
        "network kind affects timing, never the output"
    );
}
