//! Equivalence suite for the packed (Franklin–Yung SIMD) evaluation engine:
//! for every circuit, every packing width and both network kinds, the packed
//! engine must compute exactly what the scalar engine computes — which is
//! exactly the cleartext evaluation.
//!
//! Also asserts the packing experiment's headline: at ℓ = 4 each
//! multiplication layer publicly opens at most half the values the scalar
//! engine opens, and the run communicates fewer honest bits, on both
//! transport backends.

use bobw_mpc::algebra::Fp;
use bobw_mpc::core::{Circuit, MpcBuilder, Wire};
use bobw_mpc::net::{
    Backend, ByzantineStrategy, Crash, EquivocateBroadcast, GarbleBytes, NetworkKind, Passive,
    WireEncode,
};
use bobw_mpc::protocols::{AcastMsg, BcValue, Msg};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random circuit generator (same shape family as `random_circuits.rs`, but
/// over `n = 7` inputs so packing widths up to 4 are feasible at `t_s = 1`).
fn random_circuit(seed: u64, n: usize, gates: usize, max_mults: usize) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    let mut wires: Vec<Wire> = (0..n).map(|i| c.input(i)).collect();
    let mut mults = 0usize;
    for _ in 0..gates {
        let a = wires[rng.gen_range(0..wires.len())];
        let b = wires[rng.gen_range(0..wires.len())];
        let w = match rng.gen_range(0..5) {
            0 if mults < max_mults => {
                mults += 1;
                c.mul(a, b)
            }
            1 => c.sub(a, b),
            2 => c.mul_const(a, Fp::from_u64(rng.gen_range(1..100))),
            3 => c.add_const(a, Fp::from_u64(rng.gen_range(1..100))),
            _ => c.add(a, b),
        };
        wires.push(w);
    }
    c.set_output(*wires.last().expect("at least the inputs exist"));
    c
}

fn run(circuit: &Circuit, inputs: &[u64], ell: usize, kind: NetworkKind, seed: u64) -> Fp {
    MpcBuilder::new(7, 1, 1)
        .network(kind)
        .seed(seed)
        .inputs(inputs)
        .packing(ell)
        .run(circuit)
        .expect("run completes")
        .output
}

proptest! {
    // Full-stack MPC runs are expensive; a few random shapes per width and
    // network kind already cover block padding, multi-consumer wires and
    // output-cone re-positioning.
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn packed_matches_scalar_and_cleartext_on_random_circuits(
        seed in any::<u64>(),
        inputs in proptest::collection::vec(1u64..1_000_000, 7),
    ) {
        let circuit = random_circuit(seed, 7, 10, 4);
        let expected = circuit.evaluate_clear(
            &inputs.iter().map(|&x| Fp::from_u64(x)).collect::<Vec<_>>(),
        );
        for kind in [NetworkKind::Synchronous, NetworkKind::Asynchronous] {
            let scalar = run(&circuit, &inputs, 0, kind, seed ^ 0x5CA1A);
            prop_assert_eq!(scalar, expected, "scalar engine, {:?}", kind);
            for ell in [1usize, 2, 4] {
                let packed = run(&circuit, &inputs, ell, kind, seed ^ 0xFACADE);
                prop_assert_eq!(packed, expected, "packed ell={}, {:?}", ell, kind);
            }
        }
    }
}

/// The packed engine under every wire-level Byzantine strategy × both
/// network kinds: `t_s = t_a = 1` corruption at `n = 7`, output must match
/// the cleartext evaluation with the corrupt party's input zeroed when its
/// misbehaviour gets it excluded from `CS₁` (Crash/GarbleBytes), or taken
/// verbatim when it stays wire-honest (Passive) — in every case all honest
/// parties must agree and terminate.
#[test]
fn packed_engine_survives_wire_level_byzantine_strategies() {
    let n = 7;
    let mut circuit = Circuit::new(n);
    let m1 = circuit.mul(circuit.input(0), circuit.input(1));
    let m2 = circuit.mul(circuit.input(2), circuit.input(3));
    let s = circuit.add(m1, m2);
    let top = circuit.mul(s, circuit.input(4));
    let out = circuit.add(top, circuit.input(5));
    circuit.set_output(out);
    let inputs = [3u64, 5, 7, 11, 2, 13, 17];
    type MakeStrategy = Box<dyn Fn() -> Box<dyn ByzantineStrategy>>;
    let strategies: Vec<(&str, MakeStrategy)> = vec![
        ("passive", Box::new(|| Box::new(Passive))),
        ("crash", Box::new(|| Box::new(Crash))),
        ("garble", Box::new(|| Box::new(GarbleBytes))),
        (
            "equivocate",
            Box::new(|| {
                Box::new(EquivocateBroadcast {
                    alt: Msg::Acast(AcastMsg::Send(BcValue::Bit(true))).encode(),
                })
            }),
        ),
    ];
    for kind in [NetworkKind::Synchronous, NetworkKind::Asynchronous] {
        for (name, make) in &strategies {
            let result = MpcBuilder::new(n, 1, 1)
                .network(kind)
                .seed(0xE14)
                .inputs(&inputs)
                .corrupt(&[6])
                .byzantine_strategy(make())
                .packing(4)
                .horizon_factor(16)
                .run(&circuit)
                .expect("honest parties must terminate");
            // Input 6 does not feed the output, so the honest result is the
            // same whether or not party 6 made it into CS₁.
            let expected: u64 = (3 * 5 + 7 * 11) * 2 + 13;
            assert_eq!(
                result.output.as_u64(),
                expected,
                "strategy {name}, {kind:?}"
            );
        }
    }
}

/// The headline perf claim, asserted as a test on BOTH transport backends:
/// at ℓ = 4 on a layered multiplication circuit, every layer opens at most
/// half the values the scalar engine opens, and the total honest-bit count
/// is strictly lower.
#[test]
fn packed_width_4_halves_openings_and_bits_on_both_backends() {
    let n = 7;
    let circuit = Circuit::layered(n, 8, 2);
    let inputs: Vec<u64> = (0..n as u64).map(|i| i + 2).collect();
    for backend in [Backend::Simulator, Backend::Threaded] {
        let run = |ell: usize| {
            MpcBuilder::new(n, 1, 1)
                .network(NetworkKind::Synchronous)
                .seed(0xE14)
                .inputs(&inputs)
                .packing(ell)
                .transport(backend)
                .run(&circuit)
                .expect("run completes")
        };
        let scalar = run(0);
        let packed = run(4);
        assert_eq!(scalar.output, packed.output, "{backend:?} outputs agree");
        assert_eq!(packed.metrics.packed_width, 4);
        assert_eq!(scalar.metrics.packed_width, 0);
        assert_eq!(
            scalar.metrics.values_opened_by_layer.len(),
            packed.metrics.values_opened_by_layer.len(),
            "{backend:?}: same multiplication depth"
        );
        for (l, (&p, &s)) in packed
            .metrics
            .values_opened_by_layer
            .iter()
            .zip(&scalar.metrics.values_opened_by_layer)
            .enumerate()
        {
            assert!(
                2 * p <= s,
                "{backend:?} layer {l}: packed opens {p}, scalar {s}"
            );
        }
        assert!(
            packed.metrics.honest_bits < scalar.metrics.honest_bits,
            "{backend:?}: packed must cost fewer honest bits ({} vs {})",
            packed.metrics.honest_bits,
            scalar.metrics.honest_bits
        );
    }
}

/// Packed runs are deterministic: same seed → same output, same metrics
/// fingerprint, including across simulator worker-thread counts.
#[test]
fn packed_runs_are_deterministic_across_threads() {
    let circuit = Circuit::layered(7, 5, 2);
    let inputs: Vec<u64> = (0..7).map(|i| i + 2).collect();
    let run = |threads: usize| {
        let r = MpcBuilder::new(7, 1, 1)
            .network(NetworkKind::Asynchronous)
            .seed(99)
            .inputs(&inputs)
            .packing(2)
            .threads(threads)
            .run(&circuit)
            .expect("run completes");
        (r.output, r.finished_at, r.metrics)
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2, "metrics fingerprint must not depend on threads");
}
