//! Property-based end-to-end check: for randomly generated small circuits and
//! random inputs, the MPC evaluation equals the cleartext evaluation.
//!
//! This exercises the whole stack (ACS-based input sharing, triple
//! preprocessing with supervised verification, Beaver evaluation, output
//! reconstruction and termination) on circuit shapes the hand-written tests
//! do not cover.

use bobw_mpc::algebra::Fp;
use bobw_mpc::core::{Circuit, MpcBuilder, Wire};
use bobw_mpc::net::NetworkKind;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random circuit over `n` inputs with `gates` extra gates, of which
/// at most `max_mults` are multiplications.
fn random_circuit(seed: u64, n: usize, gates: usize, max_mults: usize) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    let mut wires: Vec<Wire> = (0..n).map(|i| c.input(i)).collect();
    let mut mults = 0usize;
    for _ in 0..gates {
        let a = wires[rng.gen_range(0..wires.len())];
        let b = wires[rng.gen_range(0..wires.len())];
        let w = match rng.gen_range(0..5) {
            0 if mults < max_mults => {
                mults += 1;
                c.mul(a, b)
            }
            1 => c.sub(a, b),
            2 => c.mul_const(a, Fp::from_u64(rng.gen_range(1..100))),
            3 => c.add_const(a, Fp::from_u64(rng.gen_range(1..100))),
            _ => c.add(a, b),
        };
        wires.push(w);
    }
    c.set_output(*wires.last().expect("at least the inputs exist"));
    c
}

proptest! {
    // End-to-end MPC runs are comparatively expensive; a handful of random
    // shapes per test run is plenty to catch structural regressions.
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn mpc_matches_cleartext_on_random_circuits(
        seed in any::<u64>(),
        inputs in proptest::collection::vec(1u64..1_000_000, 4),
    ) {
        let n = 4;
        let circuit = random_circuit(seed, n, 8, 3);
        let expected = circuit.evaluate_clear(
            &inputs.iter().map(|&x| Fp::from_u64(x)).collect::<Vec<_>>(),
        );
        let result = MpcBuilder::new(n, 1, 0)
            .network(NetworkKind::Synchronous)
            .seed(seed ^ 0xABCD)
            .inputs(&inputs)
            .run(&circuit)
            .expect("run completes");
        prop_assert_eq!(result.output, expected);
    }
}

#[test]
fn random_circuit_generator_is_deterministic() {
    assert_eq!(random_circuit(7, 4, 8, 3), random_circuit(7, 4, 8, 3));
    assert_ne!(random_circuit(7, 4, 8, 3), random_circuit(8, 4, 8, 3));
}
