//! Experiment E1 as an integration test: behaviour at the resilience
//! boundary `3·t_s + t_a < n`, with crashed (silent Byzantine) parties.

use bobw_mpc::core::thresholds::{resilience_table, thresholds_feasible};
use bobw_mpc::core::{Circuit, MpcBuilder};
use bobw_mpc::net::NetworkKind;

#[test]
fn feasibility_table_matches_paper_bounds() {
    for row in resilience_table(4, 20) {
        assert!(thresholds_feasible(row.n, row.bobw.0, row.bobw.1));
        assert!(row.bobw.0 <= row.smpc_ts);
        assert!(row.bobw.1 <= row.ampc_ta);
        // increasing either threshold beyond the BoBW point breaks feasibility
        assert!(
            row.bobw.0 == row.bobw.1 || !thresholds_feasible(row.n, row.bobw.0, row.bobw.1 + 1)
        );
    }
    // the paper's n = 8 example
    let row8 = &resilience_table(8, 8)[0];
    assert_eq!((row8.smpc_ts, row8.ampc_ta, row8.bobw), (2, 1, (2, 1)));
}

#[test]
fn sync_run_tolerates_ts_crashes() {
    // n = 4, t_s = 1: one crashed party, synchronous network.
    let n = 4;
    let circuit = Circuit::sum_of_inputs(n);
    let result = MpcBuilder::new(n, 1, 0)
        .network(NetworkKind::Synchronous)
        .inputs(&[5, 6, 7, 1000])
        .corrupt(&[3])
        .run(&circuit)
        .expect("must tolerate t_s = 1 crash in a synchronous network");
    // the crashed party's input is excluded (defaults to 0)
    assert_eq!(result.output.as_u64(), 5 + 6 + 7);
    assert!(!result.input_subset.contains(&3));
    assert!(result.input_subset.len() >= n - 1);
}

#[test]
fn async_run_tolerates_ta_crashes() {
    // n = 5, (t_s, t_a) = (1, 1): one crashed party, asynchronous network.
    let n = 5;
    let circuit = Circuit::sum_of_inputs(n);
    let result = MpcBuilder::new(n, 1, 1)
        .network(NetworkKind::Asynchronous)
        .inputs(&[1, 2, 3, 4, 1000])
        .corrupt(&[4])
        .run(&circuit)
        .expect("must tolerate t_a = 1 crash in an asynchronous network");
    assert_eq!(result.output.as_u64(), 1 + 2 + 3 + 4);
    assert!(result.input_subset.len() >= n - 1);
}

#[test]
fn builder_refuses_thresholds_outside_the_feasible_region() {
    // 3*1 + 1 = 4 is not < 4: the paper's bound is tight.
    assert!(std::panic::catch_unwind(|| MpcBuilder::new(4, 1, 1)).is_err());
    assert!(std::panic::catch_unwind(|| MpcBuilder::new(8, 2, 2)).is_err());
    // but the documented operating points are accepted
    assert!(std::panic::catch_unwind(|| MpcBuilder::new(8, 2, 1)).is_ok());
}
