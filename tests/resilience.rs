//! Experiment E1 as an integration test: behaviour at the resilience
//! boundary `3·t_s + t_a < n`, with crashed (silent Byzantine) parties.

use bobw_mpc::core::thresholds::{resilience_table, thresholds_feasible};
use bobw_mpc::core::{Circuit, MpcBuilder};
use bobw_mpc::net::NetworkKind;

#[test]
fn feasibility_table_matches_paper_bounds() {
    for row in resilience_table(4, 20) {
        assert!(thresholds_feasible(row.n, row.bobw.0, row.bobw.1));
        assert!(row.bobw.0 <= row.smpc_ts);
        assert!(row.bobw.1 <= row.ampc_ta);
        // increasing either threshold beyond the BoBW point breaks feasibility
        assert!(
            row.bobw.0 == row.bobw.1 || !thresholds_feasible(row.n, row.bobw.0, row.bobw.1 + 1)
        );
    }
    // the paper's n = 8 example
    let row8 = &resilience_table(8, 8)[0];
    assert_eq!((row8.smpc_ts, row8.ampc_ta, row8.bobw), (2, 1, (2, 1)));
}

#[test]
fn sync_run_tolerates_ts_crashes() {
    // n = 4, t_s = 1: one crashed party, synchronous network.
    let n = 4;
    let circuit = Circuit::sum_of_inputs(n);
    let result = MpcBuilder::new(n, 1, 0)
        .network(NetworkKind::Synchronous)
        .inputs(&[5, 6, 7, 1000])
        .corrupt(&[3])
        .run(&circuit)
        .expect("must tolerate t_s = 1 crash in a synchronous network");
    // the crashed party's input is excluded (defaults to 0)
    assert_eq!(result.output.as_u64(), 5 + 6 + 7);
    assert!(!result.input_subset.contains(&3));
    assert!(result.input_subset.len() >= n - 1);
}

#[test]
fn async_run_tolerates_ta_crashes() {
    // n = 5, (t_s, t_a) = (1, 1): one crashed party, asynchronous network.
    let n = 5;
    let circuit = Circuit::sum_of_inputs(n);
    let result = MpcBuilder::new(n, 1, 1)
        .network(NetworkKind::Asynchronous)
        .inputs(&[1, 2, 3, 4, 1000])
        .corrupt(&[4])
        .run(&circuit)
        .expect("must tolerate t_a = 1 crash in an asynchronous network");
    assert_eq!(result.output.as_u64(), 1 + 2 + 3 + 4);
    assert!(result.input_subset.len() >= n - 1);
}

#[test]
fn builder_refuses_thresholds_outside_the_feasible_region() {
    // 3*1 + 1 = 4 is not < 4: the paper's bound is tight.
    assert!(std::panic::catch_unwind(|| MpcBuilder::new(4, 1, 1)).is_err());
    assert!(std::panic::catch_unwind(|| MpcBuilder::new(8, 2, 2)).is_err());
    // but the documented operating points are accepted
    assert!(std::panic::catch_unwind(|| MpcBuilder::new(8, 2, 1)).is_ok());
}

// ---------------------------------------------------------------------------
// Pinned one-seed fault-injection repros: each test nails one cell of the
// paper's guarantee matrix under an injected fault schedule, on both party
// runtimes. The specs are exactly what the sweep harness (`core::sweeps`)
// explores at scale; pinning them here keeps the three canonical schedules —
// crash-at-tick, crash-then-recover, partition-then-heal — from regressing
// without waiting for a full sweep.
// ---------------------------------------------------------------------------

use bobw_mpc::core::sweeps::{
    cell_guarantee, check_cell, default_workload, CellSpec, Guarantee, StrategyKind, Verdict,
};
use bobw_mpc::net::Backend;

/// A pinned matrix cell at the smallest both-thresholds-positive operating
/// point `n = 5`, `(t_s, t_a) = (1, 1)`.
fn pinned_cell(
    backend: Backend,
    network: NetworkKind,
    preset: &str,
    corrupt: Vec<usize>,
    seed: u64,
) -> CellSpec {
    CellSpec {
        n: 5,
        ts: 1,
        ta: 1,
        delta: 10,
        network,
        backend,
        corrupt,
        strategy: StrategyKind::Passive,
        fault_preset: preset.to_string(),
        chaos_preset: "none".to_string(),
        slow_sender: false,
        packing: 0,
        seed,
    }
}

/// A pinned TCP-backend cell with a clean logical schedule and a named
/// socket-chaos preset roughening the wire.
fn pinned_chaos_cell(chaos: &str, seed: u64) -> CellSpec {
    let mut spec = pinned_cell(Backend::Tcp, NetworkKind::Synchronous, "none", vec![], seed);
    spec.chaos_preset = chaos.to_string();
    spec
}

fn assert_cell_correct(spec: CellSpec) {
    assert_eq!(
        cell_guarantee(&spec),
        Guarantee::MustTerminate,
        "repro cells must sit in the guaranteed region: {}",
        spec.label()
    );
    let (circuit, inputs) = default_workload(spec.n);
    let report = check_cell(&spec, &circuit, &inputs);
    assert_eq!(
        report.verdict,
        Verdict::Correct,
        "pinned repro failed — reproduce from this artifact: {}",
        report.artifact_json()
    );
}

#[test]
fn crash_at_tick_pinned_repro_simulator() {
    // The `crash` preset fail-stops party 4 at tick 2Δ, mid-ACS. Co-locating
    // the corruption there keeps the effective fault count at t_s = 1: the
    // synchronous row of the matrix still promises output delivery.
    assert_cell_correct(pinned_cell(
        Backend::Simulator,
        NetworkKind::Synchronous,
        "crash",
        vec![4],
        23,
    ));
}

#[test]
fn crash_at_tick_pinned_repro_threaded() {
    assert_cell_correct(pinned_cell(
        Backend::Threaded,
        NetworkKind::Synchronous,
        "crash",
        vec![4],
        23,
    ));
}

#[test]
fn crash_then_recover_pinned_repro_simulator() {
    // `crash-recover` drops party 4's links between 2Δ and 30Δ, then heals:
    // the messages lost during the outage make the target indistinguishable
    // from a crashed party, so the guarantee logic still budgets it as
    // faulty — and the run must nonetheless deliver (1 fault ≤ t_s).
    assert_cell_correct(pinned_cell(
        Backend::Simulator,
        NetworkKind::Synchronous,
        "crash-recover",
        vec![4],
        29,
    ));
}

#[test]
fn crash_then_recover_pinned_repro_threaded() {
    assert_cell_correct(pinned_cell(
        Backend::Threaded,
        NetworkKind::Synchronous,
        "crash-recover",
        vec![4],
        29,
    ));
}

#[test]
fn partition_then_heal_pinned_repro_simulator() {
    // `partition-heal` cuts the minority side {0, 1} off between 2Δ and
    // 30Δ with held re-delivery at the heal: eventual delivery holds but the
    // Δ bound does not, so the cell is judged on the asynchronous row —
    // still guaranteed, because the one corruption is within t_a.
    assert_cell_correct(pinned_cell(
        Backend::Simulator,
        NetworkKind::Synchronous,
        "partition-heal",
        vec![0],
        31,
    ));
}

#[test]
fn partition_then_heal_pinned_repro_threaded() {
    assert_cell_correct(pinned_cell(
        Backend::Threaded,
        NetworkKind::Synchronous,
        "partition-heal",
        vec![0],
        31,
    ));
}

#[test]
fn honest_party_crash_pinned_repro_simulator() {
    // No corruption at all: the crash target is an honest party that
    // fail-stops mid-run, spending the t_s budget by itself. It is owed no
    // output, but every surviving party must still terminate — this cell
    // once hung because the completion predicate waited on the crashed
    // party's output.
    assert_cell_correct(pinned_cell(
        Backend::Simulator,
        NetworkKind::Synchronous,
        "crash",
        vec![],
        37,
    ));
}

#[test]
fn honest_party_crash_pinned_repro_threaded() {
    assert_cell_correct(pinned_cell(
        Backend::Threaded,
        NetworkKind::Synchronous,
        "crash",
        vec![],
        37,
    ));
}

// ---------------------------------------------------------------------------
// Pinned socket-chaos repros on the TCP backend: the same one-seed pinning
// discipline, but the injected schedule lives at the *byte* layer — torn
// connections, stalled writes, duplicated runs — and the connection
// supervisors (not the protocol) must absorb it. The logical schedule is
// clean in every cell, so the verdict contract is full `Correct`, never a
// graceful abort.
// ---------------------------------------------------------------------------

#[test]
fn tcp_sever_mid_frame_pinned_repro() {
    // Every data record out of party 4 is severed mid-record on its first
    // transmission, across every protocol phase of the run. The supervisors
    // must reconnect and replay each time; `check_cell` additionally turns
    // `reconnects == 0` into a violation for sever cells, so this repro
    // proves the chaos engaged, not merely that the run survived.
    let spec = pinned_chaos_cell("sever", 41);
    assert_eq!(
        cell_guarantee(&spec),
        Guarantee::MustTerminate,
        "socket chaos must not move the cell out of the guaranteed region"
    );
    let (circuit, inputs) = default_workload(spec.n);
    let report = check_cell(&spec, &circuit, &inputs);
    assert_eq!(
        report.verdict,
        Verdict::Correct,
        "pinned repro failed — reproduce from this artifact: {}",
        report.artifact_json()
    );
    assert!(report.reconnects > 0, "{}", report.artifact_json());
}

#[test]
fn tcp_dup_bytes_pinned_repro() {
    // Duplicated byte runs after every data record out of party 4: the
    // receiver's checksum rejects the garbled tail, abandons the buffered
    // bytes and resyncs by teardown — delivery continues via replay.
    let spec = pinned_chaos_cell("dup-bytes", 43);
    let (circuit, inputs) = default_workload(spec.n);
    let report = check_cell(&spec, &circuit, &inputs);
    assert_eq!(
        report.verdict,
        Verdict::Correct,
        "pinned repro failed — reproduce from this artifact: {}",
        report.artifact_json()
    );
    assert!(report.reconnects > 0, "{}", report.artifact_json());
}

#[test]
fn tcp_reconnect_and_replay_pinned_repro() {
    // The same sever schedule driven through the builder API, asserting the
    // supervisor counters directly: severed connections were re-established
    // and the lost records were retransmitted from the replay buffer (the
    // receiver-side dedup keeps the at-least-once stream exactly-once).
    use bobw_mpc::net::FaultPlan;
    let (circuit, inputs) = bobw_mpc::core::sweeps::default_workload(5);
    let result = MpcBuilder::new(5, 1, 1)
        .network(NetworkKind::Synchronous)
        .seed(41)
        .inputs(&inputs)
        .transport(Backend::Tcp)
        .tick_micros(100)
        .chaos_plan(FaultPlan::chaos_preset("sever", 5, 10).expect("known chaos preset"))
        .run(&circuit)
        .expect("sever chaos must not abort a clean logical schedule");
    assert!(
        result.metrics.reconnects > 0,
        "supervisors never reconnected"
    );
    assert!(
        result.metrics.frames_replayed > 0,
        "reconnects happened but nothing was replayed"
    );
    let clean = MpcBuilder::new(5, 1, 1)
        .network(NetworkKind::Synchronous)
        .seed(41)
        .inputs(&inputs)
        .transport(Backend::Tcp)
        .tick_micros(100)
        .run(&circuit)
        .expect("clean tcp run");
    // Chaos stretches wall clock only: the logical result and the honest
    // communication accounting are bit-identical to the clean wire.
    assert_eq!(result.output, clean.output);
    assert_eq!(
        result.metrics, clean.metrics,
        "chaos changed the fingerprint"
    );
    assert_eq!(clean.metrics.reconnects, 0);
}

#[test]
fn tcp_stall_past_wedge_surfaces_diagnosis_not_hang() {
    // Writes out of party 4 stall far past a test-sized wedge deadline
    // during one early tick. The receiver gate must not hang: it records a
    // wedge diagnosis (surfaced as `TransportError::Wedged` if the run
    // aborts, or as `Metrics::wedges > 0` when the run still completes
    // after the capped stall) and releases.
    use bobw_mpc::net::{FaultPlan, TransportError};
    let (circuit, inputs) = bobw_mpc::core::sweeps::default_workload(5);
    let run = MpcBuilder::new(5, 1, 1)
        .network(NetworkKind::Synchronous)
        .seed(47)
        .inputs(&inputs)
        .transport(Backend::Tcp)
        .tick_micros(100)
        .wedge_timeout(std::time::Duration::from_millis(40))
        .chaos_plan(FaultPlan::chaos_preset("stall", 5, 10).expect("known chaos preset"))
        .run(&circuit);
    match run {
        Ok(result) => assert!(
            result.metrics.wedges > 0,
            "a 300 ms stalled write must trip a 40 ms wedge deadline somewhere"
        ),
        Err(e) => assert!(
            matches!(e.transport, Some(TransportError::Wedged { .. })),
            "an aborting stalled run must carry the wedge diagnosis: {e}"
        ),
    }
}
