//! Experiment E1 as an integration test: behaviour at the resilience
//! boundary `3·t_s + t_a < n`, with crashed (silent Byzantine) parties.

use bobw_mpc::core::thresholds::{resilience_table, thresholds_feasible};
use bobw_mpc::core::{Circuit, MpcBuilder};
use bobw_mpc::net::NetworkKind;

#[test]
fn feasibility_table_matches_paper_bounds() {
    for row in resilience_table(4, 20) {
        assert!(thresholds_feasible(row.n, row.bobw.0, row.bobw.1));
        assert!(row.bobw.0 <= row.smpc_ts);
        assert!(row.bobw.1 <= row.ampc_ta);
        // increasing either threshold beyond the BoBW point breaks feasibility
        assert!(
            row.bobw.0 == row.bobw.1 || !thresholds_feasible(row.n, row.bobw.0, row.bobw.1 + 1)
        );
    }
    // the paper's n = 8 example
    let row8 = &resilience_table(8, 8)[0];
    assert_eq!((row8.smpc_ts, row8.ampc_ta, row8.bobw), (2, 1, (2, 1)));
}

#[test]
fn sync_run_tolerates_ts_crashes() {
    // n = 4, t_s = 1: one crashed party, synchronous network.
    let n = 4;
    let circuit = Circuit::sum_of_inputs(n);
    let result = MpcBuilder::new(n, 1, 0)
        .network(NetworkKind::Synchronous)
        .inputs(&[5, 6, 7, 1000])
        .corrupt(&[3])
        .run(&circuit)
        .expect("must tolerate t_s = 1 crash in a synchronous network");
    // the crashed party's input is excluded (defaults to 0)
    assert_eq!(result.output.as_u64(), 5 + 6 + 7);
    assert!(!result.input_subset.contains(&3));
    assert!(result.input_subset.len() >= n - 1);
}

#[test]
fn async_run_tolerates_ta_crashes() {
    // n = 5, (t_s, t_a) = (1, 1): one crashed party, asynchronous network.
    let n = 5;
    let circuit = Circuit::sum_of_inputs(n);
    let result = MpcBuilder::new(n, 1, 1)
        .network(NetworkKind::Asynchronous)
        .inputs(&[1, 2, 3, 4, 1000])
        .corrupt(&[4])
        .run(&circuit)
        .expect("must tolerate t_a = 1 crash in an asynchronous network");
    assert_eq!(result.output.as_u64(), 1 + 2 + 3 + 4);
    assert!(result.input_subset.len() >= n - 1);
}

#[test]
fn builder_refuses_thresholds_outside_the_feasible_region() {
    // 3*1 + 1 = 4 is not < 4: the paper's bound is tight.
    assert!(std::panic::catch_unwind(|| MpcBuilder::new(4, 1, 1)).is_err());
    assert!(std::panic::catch_unwind(|| MpcBuilder::new(8, 2, 2)).is_err());
    // but the documented operating points are accepted
    assert!(std::panic::catch_unwind(|| MpcBuilder::new(8, 2, 1)).is_ok());
}

// ---------------------------------------------------------------------------
// Pinned one-seed fault-injection repros: each test nails one cell of the
// paper's guarantee matrix under an injected fault schedule, on both party
// runtimes. The specs are exactly what the sweep harness (`core::sweeps`)
// explores at scale; pinning them here keeps the three canonical schedules —
// crash-at-tick, crash-then-recover, partition-then-heal — from regressing
// without waiting for a full sweep.
// ---------------------------------------------------------------------------

use bobw_mpc::core::sweeps::{
    cell_guarantee, check_cell, default_workload, CellSpec, Guarantee, StrategyKind, Verdict,
};
use bobw_mpc::net::Backend;

/// A pinned matrix cell at the smallest both-thresholds-positive operating
/// point `n = 5`, `(t_s, t_a) = (1, 1)`.
fn pinned_cell(
    backend: Backend,
    network: NetworkKind,
    preset: &str,
    corrupt: Vec<usize>,
    seed: u64,
) -> CellSpec {
    CellSpec {
        n: 5,
        ts: 1,
        ta: 1,
        delta: 10,
        network,
        backend,
        corrupt,
        strategy: StrategyKind::Passive,
        fault_preset: preset.to_string(),
        slow_sender: false,
        packing: 0,
        seed,
    }
}

fn assert_cell_correct(spec: CellSpec) {
    assert_eq!(
        cell_guarantee(&spec),
        Guarantee::MustTerminate,
        "repro cells must sit in the guaranteed region: {}",
        spec.label()
    );
    let (circuit, inputs) = default_workload(spec.n);
    let report = check_cell(&spec, &circuit, &inputs);
    assert_eq!(
        report.verdict,
        Verdict::Correct,
        "pinned repro failed — reproduce from this artifact: {}",
        report.artifact_json()
    );
}

#[test]
fn crash_at_tick_pinned_repro_simulator() {
    // The `crash` preset fail-stops party 4 at tick 2Δ, mid-ACS. Co-locating
    // the corruption there keeps the effective fault count at t_s = 1: the
    // synchronous row of the matrix still promises output delivery.
    assert_cell_correct(pinned_cell(
        Backend::Simulator,
        NetworkKind::Synchronous,
        "crash",
        vec![4],
        23,
    ));
}

#[test]
fn crash_at_tick_pinned_repro_threaded() {
    assert_cell_correct(pinned_cell(
        Backend::Threaded,
        NetworkKind::Synchronous,
        "crash",
        vec![4],
        23,
    ));
}

#[test]
fn crash_then_recover_pinned_repro_simulator() {
    // `crash-recover` drops party 4's links between 2Δ and 30Δ, then heals:
    // the messages lost during the outage make the target indistinguishable
    // from a crashed party, so the guarantee logic still budgets it as
    // faulty — and the run must nonetheless deliver (1 fault ≤ t_s).
    assert_cell_correct(pinned_cell(
        Backend::Simulator,
        NetworkKind::Synchronous,
        "crash-recover",
        vec![4],
        29,
    ));
}

#[test]
fn crash_then_recover_pinned_repro_threaded() {
    assert_cell_correct(pinned_cell(
        Backend::Threaded,
        NetworkKind::Synchronous,
        "crash-recover",
        vec![4],
        29,
    ));
}

#[test]
fn partition_then_heal_pinned_repro_simulator() {
    // `partition-heal` cuts the minority side {0, 1} off between 2Δ and
    // 30Δ with held re-delivery at the heal: eventual delivery holds but the
    // Δ bound does not, so the cell is judged on the asynchronous row —
    // still guaranteed, because the one corruption is within t_a.
    assert_cell_correct(pinned_cell(
        Backend::Simulator,
        NetworkKind::Synchronous,
        "partition-heal",
        vec![0],
        31,
    ));
}

#[test]
fn partition_then_heal_pinned_repro_threaded() {
    assert_cell_correct(pinned_cell(
        Backend::Threaded,
        NetworkKind::Synchronous,
        "partition-heal",
        vec![0],
        31,
    ));
}

#[test]
fn honest_party_crash_pinned_repro_simulator() {
    // No corruption at all: the crash target is an honest party that
    // fail-stops mid-run, spending the t_s budget by itself. It is owed no
    // output, but every surviving party must still terminate — this cell
    // once hung because the completion predicate waited on the crashed
    // party's output.
    assert_cell_correct(pinned_cell(
        Backend::Simulator,
        NetworkKind::Synchronous,
        "crash",
        vec![],
        37,
    ));
}

#[test]
fn honest_party_crash_pinned_repro_threaded() {
    assert_cell_correct(pinned_cell(
        Backend::Threaded,
        NetworkKind::Synchronous,
        "crash",
        vec![],
        37,
    ));
}
