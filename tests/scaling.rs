//! Communication-scaling sanity checks backing the complexity claims of
//! experiments E5–E7 (they are also printed as full series by the benchmark
//! harness; here we assert the monotonicity/shape properties that must hold
//! on every machine).

use bobw_mpc::algebra::{Fp, Polynomial};
use bobw_mpc::net::{CorruptionSet, NetConfig, Protocol, Simulation};
use bobw_mpc::protocols::vss::Vss;
use bobw_mpc::protocols::wps::Wps;
use bobw_mpc::protocols::{Msg, Params};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn wps_bits(n: usize, l: usize) -> u64 {
    let params = Params::max_thresholds(n, 10);
    let mut rng = StdRng::seed_from_u64(1);
    let polys: Vec<Polynomial> = (0..l)
        .map(|i| Polynomial::random_with_constant_term(&mut rng, params.ts, Fp::from_u64(i as u64)))
        .collect();
    let parties: Vec<Box<dyn Protocol<Msg>>> = (0..n)
        .map(|i| {
            let w = if i == 0 {
                Wps::new_dealer(0, params, polys.clone())
            } else {
                Wps::new(0, params, l)
            };
            Box::new(w) as Box<dyn Protocol<Msg>>
        })
        .collect();
    let mut sim = Simulation::new(NetConfig::synchronous(n), CorruptionSet::none(), parties);
    let done = sim.run_until(params.t_wps() * 4, |s| {
        (0..n).all(|i| s.party_as::<Wps>(i).unwrap().shares.is_some())
    });
    assert!(done);
    sim.metrics().honest_bits
}

fn vss_bits(n: usize, l: usize) -> u64 {
    let params = Params::max_thresholds(n, 10);
    let mut rng = StdRng::seed_from_u64(2);
    let polys: Vec<Polynomial> = (0..l)
        .map(|i| Polynomial::random_with_constant_term(&mut rng, params.ts, Fp::from_u64(i as u64)))
        .collect();
    let parties: Vec<Box<dyn Protocol<Msg>>> = (0..n)
        .map(|i| {
            let v = if i == 0 {
                Vss::new_dealer(0, params, polys.clone())
            } else {
                Vss::new(0, params, l)
            };
            Box::new(v) as Box<dyn Protocol<Msg>>
        })
        .collect();
    let mut sim = Simulation::new(NetConfig::synchronous(n), CorruptionSet::none(), parties);
    let done = sim.run_until(params.t_vss() * 4, |s| {
        (0..n).all(|i| s.party_as::<Vss>(i).unwrap().shares.is_some())
    });
    assert!(done);
    sim.metrics().honest_bits
}

#[test]
fn wps_cost_is_affine_in_l() {
    // Theorem 4.8: O(n² L + n⁴) — doubling L far less than doubles the cost
    // for small L (the n⁴ term dominates), and the marginal cost per extra
    // polynomial is roughly constant.
    let n = 4;
    let b1 = wps_bits(n, 1);
    let b8 = wps_bits(n, 8);
    let b16 = wps_bits(n, 16);
    assert!(b8 > b1);
    assert!(b16 > b8);
    let marginal_low = (b8 - b1) as f64 / 7.0;
    let marginal_high = (b16 - b8) as f64 / 8.0;
    assert!(
        (marginal_low - marginal_high).abs() / marginal_high < 0.5,
        "per-polynomial marginal cost should be roughly constant: {marginal_low} vs {marginal_high}"
    );
    assert!(
        b16 < b1 * 16,
        "cost must be far from linear in L (fixed n⁴ term dominates)"
    );
}

#[test]
fn vss_costs_about_n_times_wps() {
    // Π_VSS runs one Π_WPS instance per party plus the same vote/BA overhead:
    // its cost must sit between n/2× and 3n× the single-WPS cost.
    let n = 4;
    let wps = wps_bits(n, 1) as f64;
    let vss = vss_bits(n, 1) as f64;
    let ratio = vss / wps;
    assert!(
        ratio > n as f64 / 2.0 && ratio < 3.0 * n as f64,
        "VSS/WPS cost ratio {ratio:.1} should be around n = {n}"
    );
}

#[test]
fn communication_grows_with_n() {
    // More parties → strictly more honest communication for the same task.
    assert!(wps_bits(7, 1) > wps_bits(4, 1));
    assert!(vss_bits(5, 1) > vss_bits(4, 1));
}
