//! Conformance harness: the deterministic simulator as golden oracle for the
//! real runtimes.
//!
//! For every seed in the sweep, the same full MPC evaluation is run twice —
//! once on the discrete-event [`Simulation`] backend with the frozen
//! [`LinkDelays`] latency matrix installed as its scheduler, once on a real
//! backend where each party is an OS thread exchanging canonical wire bytes
//! and all timers are real `recv_timeout` deadlines. The real backend under
//! test follows `MPC_TRANSPORT`: the threaded (in-process channel) runtime
//! by default, the supervised TCP socket runtime under `MPC_TRANSPORT=tcp`
//! — the whole module doubles as the socket transport's conformance proof.
//! The two runs must produce byte-identical per-party outputs, the same
//! agreed input subset, and identical communication accounting (the
//! [`Metrics`] fingerprint, including per-party `honest_bits`; supervisor
//! wall-clock counters such as `reconnects` are excluded from the
//! fingerprint by construction). Transcript *order* may differ between
//! backends; per-party event sequences may not.

use bobw_mpc::core::{Circuit, MpcBuilder, MpcRunResult};
use bobw_mpc::net::{
    Backend, ByzantineStrategy, Crash, EquivocateBroadcast, GarbleBytes, LinkDelays, NetConfig,
    NetworkKind, Passive, SkewedAsyncScheduler,
};

/// Real tick durations to attempt for the threaded runs, shortest first.
/// The backend's conservative link-clock gate back-pressures receivers when
/// debug-build compute overruns a tick on a loaded machine, so small ticks
/// are safe; a packet still counts as `late` only if a sender stalls past
/// the gate's grace period, and the harness retries with a longer tick
/// rather than failing outright on such a stall.
fn tick_schedule() -> Vec<u64> {
    vec![1000, 4000]
}

/// A named constructor for one wire-level adversary behaviour.
type StrategyCtor = (&'static str, fn() -> Box<dyn ByzantineStrategy>);

/// The four wire-level behaviours of the adversary model, each applied to a
/// single corrupt party running honest protocol code.
fn strategies() -> Vec<StrategyCtor> {
    vec![
        ("passive", || Box::new(Passive)),
        ("crash", || Box::new(Crash)),
        ("equivocate", || {
            Box::new(EquivocateBroadcast {
                alt: vec![0xAB, 0xCD, 0xEF],
            })
        }),
        ("garble", || Box::new(GarbleBytes)),
    ]
}

/// The real (thread-per-party) backend under test: `MPC_TRANSPORT=tcp`
/// selects the socket runtime, anything else the in-process threaded one —
/// the simulator side of the comparison is always explicit.
fn real_backend() -> Backend {
    match Backend::from_env() {
        Backend::Tcp => Backend::Tcp,
        _ => Backend::Threaded,
    }
}

struct Conformance {
    sim: MpcRunResult,
    real: MpcRunResult,
}

/// Runs the same configuration on both backends and asserts the conformance
/// contract.
fn assert_conformant(
    kind: NetworkKind,
    seed: u64,
    corrupt: &[usize],
    strategy: fn() -> Box<dyn ByzantineStrategy>,
    label: &str,
) -> Conformance {
    let (n, ts, ta) = match kind {
        NetworkKind::Synchronous => (4, 1, 0),
        NetworkKind::Asynchronous => (5, 1, 1),
    };
    let mut circuit = Circuit::new(n);
    let p = circuit.mul(circuit.input(0), circuit.input(1));
    let q = circuit.add(circuit.input(2), p);
    circuit.set_output(q);
    let inputs: Vec<u64> = (0..n as u64).map(|i| 3 * i + 2).collect();
    // Both backends run the exact same frozen latency matrix: the simulator
    // takes it as its scheduler, the threaded backend stamps it onto packets.
    // The asynchronous matrix slows one sender to 3Δ — beyond every Δ-timer,
    // enough to force the fallback path without stretching the run the way
    // the default 20Δ skew would (this test pays real wall-clock per tick).
    let delta = NetConfig::DEFAULT_DELTA;
    let links = match kind {
        NetworkKind::Synchronous => LinkDelays::for_kind(n, kind, delta, seed),
        NetworkKind::Asynchronous => LinkDelays::sampled_from(
            n,
            seed,
            &mut SkewedAsyncScheduler {
                slowed_senders: vec![seed as usize % n],
                lag: 3 * delta,
                fast: delta - 1,
            },
        ),
    };
    let build = |backend: Backend, tick_us: u64| {
        let mut b = MpcBuilder::new(n, ts, ta)
            .network(kind)
            .seed(seed)
            .inputs(&inputs)
            .frames(true)
            .drain(true)
            .horizon_factor(64)
            .transport(backend);
        if !corrupt.is_empty() {
            b = b.corrupt(corrupt).byzantine_strategy(strategy());
        }
        match backend {
            Backend::Simulator => b.scheduler(Box::new(links.clone())),
            Backend::Threaded | Backend::Tcp => b.link_delays(links.clone()).tick_micros(tick_us),
        }
    };
    let sim = build(Backend::Simulator, 0)
        .run(&circuit)
        .unwrap_or_else(|e| panic!("simulator run failed ({label}, seed {seed}): {e}"));
    let backend = real_backend();
    let schedule = tick_schedule();
    let mut real = None;
    for (attempt, &tick_us) in schedule.iter().enumerate() {
        let last = attempt + 1 == schedule.len();
        // A failed run (e.g. divergence after a grace-bailed stall kept the
        // protocol from terminating) is retried on a longer tick like a late
        // run; only the final attempt is allowed to panic.
        let run = match build(backend, tick_us).run(&circuit) {
            Ok(run) => run,
            Err(e) if last => panic!("{backend:?} run failed ({label}, seed {seed}): {e}"),
            Err(e) => {
                eprintln!(
                    "conformance ({label}, seed {seed}): run failed at tick {tick_us}µs ({e}), retrying slower"
                );
                continue;
            }
        };
        if run.metrics.late_packets == 0 || last {
            real = Some(run);
            break;
        }
        eprintln!(
            "conformance ({label}, seed {seed}): {} late packets at tick {tick_us}µs, retrying slower",
            run.metrics.late_packets
        );
    }
    let real = real.expect("at least one real-backend attempt ran");

    assert!(
        real.metrics.late_packets == 0,
        "{backend:?} run overran even the largest tick ({label}, seed {seed})"
    );
    assert_eq!(
        sim.outputs, real.outputs,
        "per-party outputs must be byte-identical ({backend:?}, {label}, seed {seed})"
    );
    assert_eq!(
        sim.input_subset, real.input_subset,
        "agreed input subset must match ({backend:?}, {label}, seed {seed})"
    );
    // The Metrics fingerprint (wall-clock and engine-granularity fields —
    // including the TCP supervisor counters — are excluded from PartialEq)
    // covers honest/corrupt message and bit counts, decode failures,
    // adversary actions, and the per-segment breakdown.
    assert_eq!(
        sim.metrics, real.metrics,
        "metrics fingerprint must match ({backend:?}, {label}, seed {seed})"
    );
    // Per-party honest bits called out explicitly: identical accounting for
    // every single party, not just in aggregate.
    assert_eq!(
        sim.metrics.honest_bits_by_party, real.metrics.honest_bits_by_party,
        "per-party honest_bits must match ({backend:?}, {label}, seed {seed})"
    );
    Conformance { sim, real }
}

#[test]
fn synchronous_conformance_all_strategies() {
    for seed in [1u64, 5] {
        for (label, strategy) in strategies() {
            let runs = assert_conformant(NetworkKind::Synchronous, seed, &[3], strategy, label);
            // Real timeouts drove every round transition on the threaded path.
            assert!(runs.real.metrics.timeouts_fired > 0);
        }
    }
}

#[test]
fn synchronous_conformance_all_honest() {
    let runs = assert_conformant(
        NetworkKind::Synchronous,
        9,
        &[],
        || Box::new(Passive),
        "honest",
    );
    assert_eq!(runs.sim.input_subset, vec![0, 1, 2, 3]);
    assert!(runs.real.metrics.timeouts_fired > 0);
}

#[test]
fn asynchronous_conformance_all_strategies() {
    for (label, strategy) in strategies() {
        let runs = assert_conformant(NetworkKind::Asynchronous, 2, &[4], strategy, label);
        // The asynchronous latency matrix slows one sender beyond Δ, so the
        // threaded parties' real recv_timeout deadlines expire before its
        // bytes arrive: the sync→async fallback is exercised by genuine
        // wall-clock timeouts, not simulated ticks.
        assert!(
            runs.real.metrics.timeouts_fired > 0,
            "fallback must be driven by real timeouts ({label})"
        );
    }
}

#[test]
fn crashed_party_is_excluded_by_real_timeouts() {
    // A crashed corrupt party never delivers a byte, so its input cannot
    // enter the agreed subset; on the threaded backend the honest parties
    // discover this purely through elapsed recv_timeout deadlines.
    let runs = assert_conformant(
        NetworkKind::Asynchronous,
        6,
        &[4],
        || Box::new(Crash),
        "crash-fallback",
    );
    assert!(
        !runs.real.input_subset.contains(&4),
        "a crashed party's input cannot be agreed into the subset"
    );
    assert!(runs.real.input_subset.len() >= 4);
    assert!(runs.real.metrics.timeouts_fired > 0);
}
